package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/core"
)

// locateServer boots a bootstrapped small-room backend and returns a photo
// suitable for localisation queries.
func locateServer(t *testing.T) (ts string, photo camera.Photo) {
	t.Helper()
	srv, _, w, v := newTestServer(t)
	rng := rand.New(rand.NewSource(31))
	boot, err := core.BootstrapCapture(w, v, camera.DefaultIntrinsics(), rng)
	if err != nil {
		t.Fatal(err)
	}
	req := UploadRequest{Bootstrap: true}
	for _, p := range boot {
		req.Photos = append(req.Photos, PhotoToDTO(p))
	}
	if code := postJSON(t, srv.URL+"/v1/photos", req, new(UploadResponse)); code != http.StatusOK {
		t.Fatalf("bootstrap code %d", code)
	}
	pos := v.Entrance()
	pos.Y += 1.5
	sweep, err := w.Sweep(pos, camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return srv.URL, sweep[0]
}

// TestLocateDeterministic pins the per-request rng derivation: repeating an
// identical locate query must return the identical estimate, with no shared
// rng stream for other requests to perturb.
func TestLocateDeterministic(t *testing.T) {
	url, photo := locateServer(t)
	req := LocateRequest{Photo: PhotoToDTO(photo)}
	var first LocateResponse
	if code := postJSON(t, url+"/v1/locate", req, &first); code != http.StatusOK {
		t.Fatalf("locate code %d", code)
	}
	if first.Matched == 0 {
		t.Fatal("locate query matched no model features")
	}
	// Interleave an unrelated query; a shared rng would advance its stream
	// and change the repeat's answer, a per-request rng must not.
	other := photo
	other.Pose.Pos.X += 0.3
	if code := postJSON(t, url+"/v1/locate", LocateRequest{Photo: PhotoToDTO(other)}, new(LocateResponse)); code != http.StatusOK {
		t.Fatalf("interleaved locate code %d", code)
	}
	for i := 0; i < 3; i++ {
		var again LocateResponse
		if code := postJSON(t, url+"/v1/locate", req, &again); code != http.StatusOK {
			t.Fatalf("repeat locate code %d", code)
		}
		if again != first {
			t.Fatalf("repeat %d: locate answer drifted: %+v vs %+v", i, again, first)
		}
	}
}

// TestLocateConcurrent fires many locate queries in parallel (run with
// -race this proves the lock-free path) and checks each request's answer
// stays deterministic under contention.
func TestLocateConcurrent(t *testing.T) {
	url, photo := locateServer(t)

	// Sequential baseline per distinct query.
	queries := make([]LocateRequest, 4)
	want := make([]LocateResponse, 4)
	for i := range queries {
		p := photo
		p.Pose.Pos.X += 0.2 * float64(i)
		queries[i] = LocateRequest{Photo: PhotoToDTO(p)}
		if code := postJSON(t, url+"/v1/locate", queries[i], &want[i]); code != http.StatusOK {
			t.Fatalf("baseline locate %d code %d", i, code)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				i := (g + j) % len(queries)
				var got LocateResponse
				if code := postJSONNoFatal(url+"/v1/locate", queries[i], &got); code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: locate code %d", g, code)
					return
				}
				if got != want[i] {
					errs <- fmt.Errorf("goroutine %d: query %d diverged under contention: %+v vs %+v", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkLocateParallel measures POST /v1/locate throughput with
// concurrent clients. The per-request derived rng means this path takes no
// lock, so throughput should scale with readers instead of serialising the
// way the old shared locked rng did.
func BenchmarkLocateParallel(b *testing.B) {
	ts, sweeps := benchServer(b)
	defer ts.Close()
	req := LocateRequest{Photo: PhotoToDTO(sweeps[0][0])}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var resp LocateResponse
			if code := postJSONNoFatal(ts.URL+"/v1/locate", req, &resp); code != http.StatusOK {
				b.Errorf("locate code %d", code)
				return
			}
		}
	})
}
