// Shared cross-campaign worker pool: one agent fleet registers here once
// and claims from whichever campaign currently has work. The pool keeps
// its own registry and lazily enrols a worker into a campaign's dispatcher
// the first time it claims there, so campaign dispatch state (leases,
// per-worker counters, journal events) stays fully per-campaign.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"snaptask/internal/dispatch"
	"snaptask/internal/geom"
	"snaptask/internal/server"
)

// PoolRegisterResponse confirms pool registration.
type PoolRegisterResponse struct {
	ID string `json:"id"`
}

// PoolClaimResponse is a campaign-attributed claim: the granting
// campaign's ID plus the standard lease grant. AllCovered reports that
// every live campaign is fully covered — the fleet's stop signal.
type PoolClaimResponse struct {
	Campaign string `json:"campaign,omitempty"`
	server.ClaimResponse
	AllCovered bool `json:"allCovered,omitempty"`
}

// pool is the manager's shared worker registry.
type pool struct {
	m  *Manager
	mu sync.Mutex
	// workers maps pool worker ID to its info and per-campaign enrolment.
	workers map[string]*poolWorker
	seq     int
}

type poolWorker struct {
	info dispatch.WorkerInfo
	mu   sync.Mutex
	// enrolled marks the campaigns whose dispatcher already knows this
	// worker (registration is idempotent; this just avoids re-announcing
	// on every claim).
	enrolled map[string]bool
}

func newPool(m *Manager) *pool {
	return &pool{m: m, workers: make(map[string]*poolWorker)}
}

// register adds (or re-announces) a worker to the pool.
func (p *pool) register(req server.RegisterWorkerRequest) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := req.ID
	if id == "" {
		p.seq++
		id = fmt.Sprintf("pool-%d", p.seq)
	}
	pw, ok := p.workers[id]
	if !ok {
		pw = &poolWorker{enrolled: make(map[string]bool)}
		p.workers[id] = pw
		p.m.cm.PoolWorkers.Set(float64(len(p.workers)))
	}
	pw.info = dispatch.WorkerInfo{
		ID:          id,
		Pos:         geom.V2(req.X, req.Y),
		HasPos:      req.HasLoc,
		BaseReward:  req.BaseReward,
		PerMetre:    req.PerMetre,
		Reliability: req.Reliability,
	}
	return id
}

func (p *pool) get(id string) *poolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers[id]
}

// claim picks the campaign with the most remaining work (pending tasks
// from the lock-free read snapshot, campaign ID as the deterministic
// tiebreak), enrols the worker there if needed, and claims. Campaigns
// that answer no-task fall through to the next candidate.
func (p *pool) claim(req server.ClaimRequest) (PoolClaimResponse, int, error) {
	pw := p.get(req.WorkerID)
	if pw == nil {
		p.m.cm.PoolClaims.With("error").Inc()
		return PoolClaimResponse{}, http.StatusNotFound,
			fmt.Errorf("pool: unknown worker %q (register via POST /v1/pool/workers)", req.WorkerID)
	}
	var pos *geom.Vec2
	if req.HasLoc {
		v := geom.V2(req.X, req.Y)
		pos = &v
	}

	type candidate struct {
		c       *Campaign
		pending int
	}
	var (
		cands   []candidate
		live    int
		covered int
	)
	for _, c := range p.m.List() {
		if c.Archived() {
			continue
		}
		live++
		snap := c.srv.Snapshot()
		if snap == nil {
			continue
		}
		if snap.Status.Covered {
			covered++
			continue
		}
		if snap.Status.PendingTasks == 0 {
			continue
		}
		cands = append(cands, candidate{c, snap.Status.PendingTasks})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pending != cands[j].pending {
			return cands[i].pending > cands[j].pending
		}
		return cands[i].c.ID() < cands[j].c.ID()
	})

	for _, cand := range cands {
		if err := p.enrol(pw, cand.c); err != nil {
			continue
		}
		resp, err := cand.c.srv.ClaimTask(req.WorkerID, pos)
		switch {
		case err == nil && resp.Task.Covered:
			continue
		case err == nil:
			p.m.cm.PoolClaims.With("granted").Inc()
			return PoolClaimResponse{Campaign: cand.c.ID(), ClaimResponse: resp}, http.StatusOK, nil
		case errors.Is(err, dispatch.ErrNoTask),
			errors.Is(err, dispatch.ErrBudgetExhausted):
			continue
		default:
			p.m.cm.PoolClaims.With("error").Inc()
			return PoolClaimResponse{}, http.StatusInternalServerError,
				fmt.Errorf("pool: claim in campaign %q: %w", cand.c.ID(), err)
		}
	}
	if live > 0 && covered == live {
		p.m.cm.PoolClaims.With("covered").Inc()
		return PoolClaimResponse{
			ClaimResponse: server.ClaimResponse{Task: server.TaskDTO{Covered: true}},
			AllCovered:    true,
		}, http.StatusOK, nil
	}
	p.m.cm.PoolClaims.With("no_task").Inc()
	return PoolClaimResponse{}, http.StatusNotFound,
		errors.New("pool: no campaign has a pending task")
}

// enrol registers the worker with the campaign's dispatcher on first
// claim there.
func (p *pool) enrol(pw *poolWorker, c *Campaign) error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if pw.enrolled[c.ID()] {
		return nil
	}
	if _, err := c.srv.RegisterWorker(pw.info); err != nil {
		return err
	}
	pw.enrolled[c.ID()] = true
	return nil
}

// handlePoolRegister implements POST /v1/pool/workers.
func (m *Manager) handlePoolRegister(w http.ResponseWriter, r *http.Request) {
	var req server.RegisterWorkerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, PoolRegisterResponse{ID: m.pool.register(req)})
}

// handlePoolClaim implements POST /v1/pool/claim.
func (m *Manager) handlePoolClaim(w http.ResponseWriter, r *http.Request) {
	var req server.ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	resp, status, err := m.pool.claim(req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}
