package campaign

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"snaptask/internal/server"
)

func rawGET(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: code %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// buildJournaledManager wires a manager over root without t.Cleanup
// closing it — restart tests manage the lifecycle explicitly.
func buildJournaledManager(t *testing.T, root string) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{
		JournalRoot: root,
		Telemetry:   testTelemetry(),
		LeaseTTL:    time.Minute,
		SLO:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDefault(Spec{Venue: "small", Seed: 1}, nil, ""); err != nil {
		t.Fatal(err)
	}
	return m
}

// newestCheckpoint returns the highest-sequence checkpoint file in a
// campaign's store directory.
func newestCheckpoint(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no checkpoints in %s (err %v)", dir, err)
	}
	sort.Strings(paths)
	return paths[len(paths)-1]
}

// TestRestartRestoresCampaignsByteIdentically ingests into three campaigns,
// checkpoints, restarts the manager over the same journal root and asserts
// every campaign's /status and /progress responses are byte-identical —
// including one campaign whose newest checkpoint is deliberately corrupted
// so restore must fall back to the previous checkpoint plus segment replay.
func TestRestartRestoresCampaignsByteIdentically(t *testing.T) {
	root := t.TempDir()
	specs := map[string]Spec{
		DefaultID: {ID: DefaultID, Venue: "small", Seed: 1},
		"mall":    {ID: "mall", Venue: "small", Seed: 61},
		"depot":   {ID: "depot", Venue: "small", Seed: 62},
	}

	m1 := buildJournaledManager(t, root)
	for _, id := range []string{"mall", "depot"} {
		if _, err := m1.Create(specs[id]); err != nil {
			t.Fatal(err)
		}
	}
	ts1 := httptest.NewServer(m1)
	ids := []string{DefaultID, "mall", "depot"}
	for i, id := range ids {
		bootstrapCampaign(t, campaignBase(ts1, id), specs[id], int64(10+i))
	}
	// First checkpoint: the fallback level a corrupt newest checkpoint
	// falls through to.
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More ingest, then the newest checkpoint, then a replay tail.
	for i, id := range ids {
		sweepUpload(t, campaignBase(ts1, id), specs[id], int64(20+i))
	}
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		sweepUpload(t, campaignBase(ts1, id), specs[id], int64(30+i))
	}

	// A worker with live dispatch state must survive the restart too.
	var reg server.RegisterWorkerResponse
	if code := postJSON(t, campaignBase(ts1, "mall")+"/workers",
		server.RegisterWorkerRequest{ID: "rw"}, &reg); code != http.StatusOK {
		t.Fatalf("register: code %d", code)
	}

	before := map[string][2]string{}
	for _, id := range ids {
		base := campaignBase(ts1, id)
		before[id] = [2]string{rawGET(t, base+"/status"), rawGET(t, base+"/progress")}
	}

	ts1.Close()
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt depot's newest checkpoint: restore must fall back to the
	// previous checkpoint and replay the journal tail instead.
	ckpt := newestCheckpoint(t, campaignDir(root, "depot"))
	if err := os.WriteFile(ckpt, []byte("{torn-write-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := buildJournaledManager(t, root)
	defer m2.Close()
	for _, id := range ids {
		if m2.Get(id) == nil {
			t.Fatalf("campaign %q not restored", id)
		}
	}
	if got := len(m2.List()); got != len(ids) {
		t.Fatalf("restored %d campaigns, want %d", got, len(ids))
	}
	ts2 := httptest.NewServer(m2)
	defer ts2.Close()
	for _, id := range ids {
		base := campaignBase(ts2, id)
		if got := rawGET(t, base+"/status"); got != before[id][0] {
			t.Errorf("campaign %q status drifted across restart:\nbefore: %s\nafter:  %s", id, before[id][0], got)
		}
		if got := rawGET(t, base+"/progress"); got != before[id][1] {
			t.Errorf("campaign %q progress drifted across restart", id)
		}
	}
}
