// Package campaign is the multi-campaign manager: it hosts N concurrent
// venue campaigns inside one server process, each campaign owning its own
// core.System, owner lock, events journal, dispatch registry and atomic
// read snapshot — so uploads to campaign A never contend with campaign B.
//
// Sharding model: a campaign is one fully wired server.Server. The manager
// routes /v1/campaigns/{id}/... to the owning campaign's mux by rewriting
// the path, keeps the legacy single-campaign routes as aliases to a
// default campaign, and adds three cross-campaign surfaces of its own:
// lifecycle endpoints (create/list/archive, journaled in a manifest and
// restored on restart), a shared worker pool that claims from whichever
// campaign currently has the most work, and rollups on /v1/status and
// /metrics (per-campaign labels on the existing families via
// telemetry.Registry const-label views, plus aggregate gauges).
//
// Persistence layout under the manager's journal root:
//
//	<root>/                    default campaign's checkpointing store
//	<root>/model.snap          default campaign's model (written at Checkpoint)
//	<root>/campaigns.json      manifest of named campaigns
//	<root>/campaigns/<id>/     named campaign's checkpointing store
//	<root>/campaigns/<id>/model.snap
//
// The default campaign keeps the legacy single-campaign layout, so a
// pre-multi-campaign journal directory restarts unchanged.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snaptask/internal/camera"
	"snaptask/internal/core"
	"snaptask/internal/dispatch"
	"snaptask/internal/events"
	"snaptask/internal/server"
	"snaptask/internal/telemetry"
	"snaptask/internal/telemetry/slo"
	"snaptask/internal/venue"
)

// DefaultID is the campaign the legacy single-campaign routes alias to.
const DefaultID = "default"

// Spec describes one campaign: the deterministic world parameters every
// agent must share to observe the same venue. It is both the create-API
// request body and the manifest entry restored on restart.
type Spec struct {
	ID    string `json:"id"`
	Venue string `json:"venue"`
	Seed  int64  `json:"seed"`
	// Margin is the map margin beyond the venue bounds in metres
	// (<=0 takes the server default of 12).
	Margin float64 `json:"margin,omitempty"`
	// Partitions is the spatial SfM partition count (<=0 means 1).
	Partitions int `json:"partitions,omitempty"`
	// Archived is manifest state only: archived campaigns stay listable
	// and readable but reject mutations and leave the shared pool.
	Archived bool `json:"archived,omitempty"`
}

// ManagerConfig carries the per-campaign wiring templates: every campaign
// gets its own journal directory, dispatcher, admission instance and SLO
// tracker cut from these shared settings.
type ManagerConfig struct {
	// JournalRoot is the checkpointing store root ("" = campaigns are
	// ephemeral: live events and progress, no durability, no manifest).
	JournalRoot     string
	SegmentMaxBytes int64
	Checkpoint      events.CheckpointPolicy
	// Admission, when non-nil, is instantiated per campaign — each venue
	// gets its own bounded owner queue and token buckets, so one venue's
	// overload sheds only that venue's traffic.
	Admission       *server.AdmissionConfig
	LeaseTTL        time.Duration
	IncentiveBudget float64
	// Telemetry is the root bundle. Campaigns observe through
	// Registry.WithConstLabels("campaign", id) views, so every existing
	// family gains a campaign label while sharing one exposition.
	Telemetry *telemetry.Telemetry
	// Watchdog, when non-nil, probes the busiest owner path across all
	// campaigns and ticks every campaign's SLO evaluator.
	Watchdog *telemetry.Watchdog
	// SLO wires a per-campaign slo.Tracker (served at
	// /v1/campaigns/{id}/slo).
	SLO bool
	// SSEHeartbeat and SSEBuf tune every campaign's event stream (zero
	// keeps the server defaults).
	SSEHeartbeat time.Duration
	SSEBuf       int
}

// Campaign is one hosted venue campaign: a fully wired server plus the
// manager-level lifecycle state around it.
type Campaign struct {
	spec      Spec
	isDefault bool
	srv       *server.Server
	sys       *core.System
	log       *events.Log
	sloT      *slo.Tracker
	archived  atomic.Bool
}

// ID returns the campaign identifier.
func (c *Campaign) ID() string { return c.spec.ID }

// Server returns the campaign's underlying server (tests drive owner-path
// blocking and snapshots through it).
func (c *Campaign) Server() *server.Server { return c.srv }

// Log returns the campaign's event log (the CLI logs replay stats from it).
func (c *Campaign) Log() *events.Log { return c.log }

// Archived reports whether the campaign has been archived.
func (c *Campaign) Archived() bool { return c.archived.Load() }

// Manager hosts the campaigns and the cross-campaign surfaces.
type Manager struct {
	cfg  ManagerConfig
	mux  *http.ServeMux
	cm   *telemetry.CampaignMetrics
	pool *pool

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // creation order, default first when present
}

// NewManager builds a manager, restoring every named campaign recorded in
// the journal root's manifest (each campaign replays its own journal and
// reloads its model snapshot). Install the default campaign afterwards
// with CreateDefault.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	m := &Manager{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		campaigns: make(map[string]*Campaign),
	}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Registry
	}
	m.cm = telemetry.NewCampaignMetrics(reg)
	telemetry.RegisterCampaignRollups(reg, m.totalPendingTasks, m.coveredCampaigns)
	m.pool = newPool(m)
	m.routes()
	cfg.Watchdog.SetOwnerBusy(m.maxOwnerBusy)

	if cfg.JournalRoot != "" {
		mf, err := loadManifest(manifestPath(cfg.JournalRoot))
		if err != nil {
			return nil, err
		}
		for _, spec := range mf.Campaigns {
			if _, err := m.create(spec, nil); err != nil {
				return nil, fmt.Errorf("restore campaign %q: %w", spec.ID, err)
			}
		}
	}
	return m, nil
}

// ServeHTTP routes to lifecycle endpoints, campaign-scoped delegates, the
// shared pool, or the default-campaign aliases.
func (m *Manager) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// CreateDefault installs the default campaign the legacy single-campaign
// routes alias to. Its journal lives at the manager's journal root itself
// (or at journalFile for the legacy single-file store), preserving the
// pre-multi-campaign layout. sys, when non-nil, is a pre-built or
// pre-loaded model (the CLI's -load path); otherwise the model is restored
// from <root>/model.snap when present, or built fresh from the spec.
func (m *Manager) CreateDefault(spec Spec, sys *core.System, journalFile string) (*Campaign, error) {
	spec.ID = DefaultID
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.campaigns[DefaultID]; ok {
		return nil, fmt.Errorf("campaign: default campaign already installed")
	}
	c, err := m.build(spec, sys, true, journalFile)
	if err != nil {
		return nil, err
	}
	m.insertLocked(c)
	// Default first in listing order regardless of manifest restores.
	m.order = append([]string{DefaultID}, m.order[:len(m.order)-1]...)
	return c, nil
}

// Create builds, registers and journals a named campaign.
func (m *Manager) Create(spec Spec) (*Campaign, error) {
	return m.create(spec, nil)
}

// CreateWith is Create with a pre-built system — benches and tests clone a
// covered model into several campaigns without re-ingesting per campaign.
func (m *Manager) CreateWith(spec Spec, sys *core.System) (*Campaign, error) {
	return m.create(spec, sys)
}

func (m *Manager) create(spec Spec, sys *core.System) (*Campaign, error) {
	if err := validateID(spec.ID); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.campaigns[spec.ID]; ok {
		return nil, fmt.Errorf("campaign: %w: %q", ErrExists, spec.ID)
	}
	c, err := m.build(spec, sys, false, "")
	if err != nil {
		return nil, err
	}
	m.insertLocked(c)
	if err := m.saveManifestLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// build wires one campaign: venue/world from the spec, a telemetry view
// labelled with the campaign ID, its own journal (replayed inside
// server.New), dispatcher, admission instance and SLO tracker. Caller
// holds m.mu.
func (m *Manager) build(spec Spec, sys *core.System, isDefault bool, journalFile string) (*Campaign, error) {
	if spec.Margin <= 0 {
		spec.Margin = 12
	}
	if spec.Partitions <= 0 {
		spec.Partitions = 1
	}
	v, err := venue.ByName(spec.Venue, spec.Seed)
	if err != nil {
		return nil, err
	}
	feats := v.GenerateFeatures(rand.New(rand.NewSource(spec.Seed)))
	world := camera.NewWorld(v, feats)

	var (
		tel *telemetry.Telemetry
		reg *telemetry.Registry
	)
	if m.cfg.Telemetry != nil {
		reg = m.cfg.Telemetry.Registry.WithConstLabels("campaign", spec.ID)
		logger := m.cfg.Telemetry.Logger
		if logger != nil {
			logger = logger.With("campaign", spec.ID)
		}
		tel = &telemetry.Telemetry{Registry: reg, Tracer: m.cfg.Telemetry.Tracer, Logger: logger}
	}

	var log *events.Log
	em := telemetry.NewEventMetrics(reg)
	switch {
	case m.cfg.JournalRoot != "":
		dir := m.cfg.JournalRoot
		if !isDefault {
			dir = campaignDir(m.cfg.JournalRoot, spec.ID)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		log, err = events.OpenDir(dir, em,
			events.DirStoreOptions{SegmentMaxBytes: m.cfg.SegmentMaxBytes}, m.cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
	case journalFile != "":
		log, err = events.Open(journalFile, em)
		if err != nil {
			return nil, err
		}
	default:
		log = events.NewLog(em)
	}
	log.SetCampaignID(spec.ID)

	if sys == nil && m.cfg.JournalRoot != "" {
		sys, err = loadModelSnap(m.modelPath(spec.ID, isDefault), v, world)
		if err != nil {
			_ = log.Close()
			return nil, err
		}
	}
	if sys == nil {
		sys, err = core.NewSystem(v, world, core.Config{Margin: spec.Margin, Partitions: spec.Partitions})
		if err != nil {
			_ = log.Close()
			return nil, err
		}
	}
	if tel != nil {
		sys.SetTelemetry(tel)
	}

	opts := []server.Option{server.WithEvents(log)}
	if tel != nil {
		opts = append(opts, server.WithTelemetry(tel))
	}
	if m.cfg.LeaseTTL > 0 || m.cfg.IncentiveBudget > 0 {
		opts = append(opts, server.WithDispatch(dispatch.New(dispatch.Config{
			LeaseTTL: m.cfg.LeaseTTL,
			Budget:   m.cfg.IncentiveBudget,
		})))
	}
	var sloT *slo.Tracker
	if m.cfg.SLO {
		sloT = slo.New(reg)
		opts = append(opts, server.WithSLO(sloT))
	}
	if m.cfg.Admission != nil {
		opts = append(opts, server.WithAdmission(*m.cfg.Admission))
	}
	if m.cfg.SSEHeartbeat > 0 || m.cfg.SSEBuf > 0 {
		opts = append(opts, server.WithSSE(m.cfg.SSEHeartbeat, m.cfg.SSEBuf))
	}
	if m.cfg.Watchdog != nil {
		// The shared watchdog ticks each campaign's SLO evaluator and
		// captures profiles on fast burns (wired inside server.New).
		opts = append(opts, server.WithWatchdog(m.cfg.Watchdog))
	}
	srv, err := server.New(sys, rand.New(rand.NewSource(spec.Seed+1)), opts...)
	if err != nil {
		_ = log.Close()
		return nil, err
	}
	// server.New points the watchdog's owner-busy probe at this one server;
	// restore the cross-campaign probe (longest-held owner lock anywhere).
	m.cfg.Watchdog.SetOwnerBusy(m.maxOwnerBusy)

	c := &Campaign{spec: spec, isDefault: isDefault, srv: srv, sys: sys, log: log, sloT: sloT}
	c.archived.Store(spec.Archived)
	return c, nil
}

// insertLocked registers a built campaign and refreshes the lifecycle
// gauges. Caller holds m.mu.
func (m *Manager) insertLocked(c *Campaign) {
	m.campaigns[c.spec.ID] = c
	m.order = append(m.order, c.spec.ID)
	m.refreshGaugesLocked()
}

func (m *Manager) refreshGaugesLocked() {
	active, archived := 0, 0
	for _, c := range m.campaigns {
		if c.Archived() {
			archived++
		} else {
			active++
		}
	}
	m.cm.Active.Set(float64(active))
	m.cm.Archived.Set(float64(archived))
}

// Archive marks a campaign archived (idempotently), persists the manifest,
// and — when journaled — writes a final checkpoint plus model snapshot so
// a restart restores it without replay. Archived campaigns stay readable
// but reject mutations and leave the shared pool.
func (m *Manager) Archive(id string) (*Campaign, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("campaign: %w: %q", ErrNotFound, id)
	}
	if c.isDefault {
		m.mu.Unlock()
		return nil, fmt.Errorf("campaign: %w: the default campaign cannot be archived", ErrBadID)
	}
	already := c.archived.Swap(true)
	m.refreshGaugesLocked()
	var err error
	if !already {
		err = m.saveManifestLocked()
	}
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if !already {
		if cerr := m.checkpointCampaign(c); cerr != nil {
			return nil, cerr
		}
	}
	return c, nil
}

// Get returns a campaign by ID (nil when unknown).
func (m *Manager) Get(id string) *Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.campaigns[id]
}

// Default returns the default campaign (nil when not installed).
func (m *Manager) Default() *Campaign { return m.Get(DefaultID) }

// List returns every campaign in creation order (default first).
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.campaigns[id])
	}
	return out
}

// Checkpoint persists every journaled campaign: an event-log checkpoint
// and the model snapshot, captured under one owner-lock acquisition per
// campaign. The shutdown path calls it so the next start replays (almost)
// no tail and restores each model byte-identically.
func (m *Manager) Checkpoint() error {
	var firstErr error
	for _, c := range m.List() {
		if err := m.checkpointCampaign(c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (m *Manager) checkpointCampaign(c *Campaign) error {
	if m.cfg.JournalRoot == "" {
		return c.srv.CheckpointState(nil)
	}
	path := m.modelPath(c.spec.ID, c.isDefault)
	return events.WriteFileAtomic(path, func(w io.Writer) error {
		return c.srv.CheckpointState(w)
	})
}

// Close closes every campaign's journal.
func (m *Manager) Close() error {
	var firstErr error
	for _, c := range m.List() {
		if err := c.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// maxOwnerBusy is the watchdog probe: the longest-held owner lock across
// all campaigns (a stall in any campaign is a stall worth profiling).
func (m *Manager) maxOwnerBusy() time.Duration {
	var max time.Duration
	for _, c := range m.List() {
		if d := c.srv.OwnerBusy(); d > max {
			max = d
		}
	}
	return max
}

// totalPendingTasks is the scrape-time rollup: pending tasks summed over
// live campaigns.
func (m *Manager) totalPendingTasks() float64 {
	var sum float64
	for _, c := range m.List() {
		if c.Archived() {
			continue
		}
		if snap := c.srv.Snapshot(); snap != nil {
			sum += float64(snap.Status.PendingTasks)
		}
	}
	return sum
}

// coveredCampaigns counts live campaigns whose venue is fully covered.
func (m *Manager) coveredCampaigns() float64 {
	var n float64
	for _, c := range m.List() {
		if c.Archived() {
			continue
		}
		if snap := c.srv.Snapshot(); snap != nil && snap.Status.Covered {
			n++
		}
	}
	return n
}

// Rollup is the cross-campaign status row: the per-campaign summary on
// GET /v1/campaigns and the campaigns section of GET /v1/status.
type Rollup struct {
	ID              string `json:"id"`
	Venue           string `json:"venue"`
	Seed            int64  `json:"seed"`
	Archived        bool   `json:"archived,omitempty"`
	Covered         bool   `json:"covered"`
	Views           int    `json:"views"`
	Points          int    `json:"points"`
	PhotosProcessed int    `json:"photosProcessed"`
	PendingTasks    int    `json:"pendingTasks"`
}

func (m *Manager) rollup(c *Campaign) Rollup {
	r := Rollup{ID: c.spec.ID, Venue: c.spec.Venue, Seed: c.spec.Seed, Archived: c.Archived()}
	if snap := c.srv.Snapshot(); snap != nil {
		st := snap.Status
		r.Covered = st.Covered
		r.Views = st.Views
		r.Points = st.Points
		r.PhotosProcessed = st.PhotosProcessed
		r.PendingTasks = st.PendingTasks
	}
	return r
}

// Manifest persistence.

type manifest struct {
	Campaigns []Spec `json:"campaigns"`
}

func manifestPath(root string) string { return filepath.Join(root, "campaigns.json") }

func campaignDir(root, id string) string { return filepath.Join(root, "campaigns", id) }

func (m *Manager) modelPath(id string, isDefault bool) string {
	if isDefault {
		return filepath.Join(m.cfg.JournalRoot, "model.snap")
	}
	return filepath.Join(campaignDir(m.cfg.JournalRoot, id), "model.snap")
}

func loadManifest(path string) (manifest, error) {
	var mf manifest
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return mf, nil
	}
	if err != nil {
		return mf, err
	}
	if err := json.Unmarshal(data, &mf); err != nil {
		return mf, fmt.Errorf("campaign: corrupt manifest %s: %w", path, err)
	}
	return mf, nil
}

// saveManifestLocked writes the named-campaign manifest atomically (the
// default campaign is implied by the server's own flags, not recorded).
// Caller holds m.mu.
func (m *Manager) saveManifestLocked() error {
	if m.cfg.JournalRoot == "" {
		return nil
	}
	var mf manifest
	for _, id := range m.order {
		c := m.campaigns[id]
		if c.isDefault {
			continue
		}
		sp := c.spec
		sp.Archived = c.Archived()
		mf.Campaigns = append(mf.Campaigns, sp)
	}
	sort.Slice(mf.Campaigns, func(i, j int) bool { return mf.Campaigns[i].ID < mf.Campaigns[j].ID })
	return events.WriteFileAtomic(manifestPath(m.cfg.JournalRoot), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(mf)
	})
}

// loadModelSnap restores a campaign model from its snapshot file; a
// missing file returns (nil, nil) so the caller builds a fresh system.
func loadModelSnap(path string, v *venue.Venue, world *camera.World) (*core.System, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := core.LoadSystem(f, v, world)
	if err != nil {
		return nil, fmt.Errorf("campaign: load model snapshot %s: %w", path, err)
	}
	return sys, nil
}

// validateID enforces filesystem- and URL-safe campaign IDs.
func validateID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("campaign: %w: id must be 1-64 characters", ErrBadID)
	}
	if id == DefaultID {
		return fmt.Errorf("campaign: %w: %q is reserved", ErrBadID, DefaultID)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("campaign: %w: %q (use [a-z0-9_-])", ErrBadID, id)
		}
	}
	return nil
}
