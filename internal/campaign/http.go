// Campaign-manager HTTP surface: lifecycle endpoints, campaign-scoped
// delegation, the default-campaign aliases and the cross-campaign status
// rollup. Every campaign-scoped request is rewritten to the legacy path
// shape and handed to the owning campaign's server, so a campaign's mux,
// middleware, admission and telemetry see exactly the traffic a
// single-campaign server would.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"snaptask/internal/server"
)

// Sentinel errors mapped onto lifecycle HTTP statuses.
var (
	ErrNotFound = errors.New("no such campaign")
	ErrExists   = errors.New("campaign already exists")
	ErrBadID    = errors.New("invalid campaign id")
)

// ListResponse is the GET /v1/campaigns payload.
type ListResponse struct {
	Campaigns []Rollup `json:"campaigns"`
}

// ManagerStatus is the GET /v1/status payload under the manager: the
// default campaign's status (unchanged shape, so single-campaign clients
// keep decoding it) plus the cross-campaign rollup section.
type ManagerStatus struct {
	server.StatusResponse
	Campaigns []Rollup `json:"campaigns"`
}

func (m *Manager) routes() {
	m.mux.HandleFunc("POST /v1/campaigns", m.handleCreate)
	m.mux.HandleFunc("GET /v1/campaigns", m.handleList)
	m.mux.HandleFunc("GET /v1/campaigns/{id}", m.handleGet)
	m.mux.HandleFunc("POST /v1/campaigns/{id}/archive", m.handleArchive)
	m.mux.HandleFunc("/v1/campaigns/{id}/{rest...}", m.handleDelegate)
	m.mux.HandleFunc("POST /v1/pool/workers", m.handlePoolRegister)
	m.mux.HandleFunc("POST /v1/pool/claim", m.handlePoolClaim)
	m.mux.HandleFunc("GET /v1/status", m.handleStatus)
	m.mux.HandleFunc("/", m.handleDefaultAlias)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func lifecycleStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrBadID):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// handleCreate implements POST /v1/campaigns.
func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	spec.Archived = false
	c, err := m.Create(spec)
	if err != nil {
		writeError(w, lifecycleStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, m.rollup(c))
}

// handleList implements GET /v1/campaigns.
func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	resp := ListResponse{Campaigns: []Rollup{}}
	for _, c := range m.List() {
		resp.Campaigns = append(resp.Campaigns, m.rollup(c))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGet implements GET /v1/campaigns/{id}: the campaign's rollup row.
func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	c := m.Get(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, m.rollup(c))
}

// handleArchive implements POST /v1/campaigns/{id}/archive.
func (m *Manager) handleArchive(w http.ResponseWriter, r *http.Request) {
	c, err := m.Archive(r.PathValue("id"))
	if err != nil {
		writeError(w, lifecycleStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, m.rollup(c))
}

// handleDelegate implements /v1/campaigns/{id}/{rest...}: rewrite to the
// legacy path shape and hand to the owning campaign's server.
func (m *Manager) handleDelegate(w http.ResponseWriter, r *http.Request) {
	c := m.Get(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	if c.Archived() && r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusGone, fmt.Errorf("campaign %q is archived", c.ID()))
		return
	}
	m.forward(c, w, r, "/v1/"+r.PathValue("rest"))
}

// handleDefaultAlias keeps every legacy route working: anything not
// claimed by a manager-level pattern goes to the default campaign
// (override with ?campaign=<id>, which is also the SSE filter — each
// campaign owns its own event log, so filtering is routing).
func (m *Manager) handleDefaultAlias(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("campaign")
	if id == "" {
		id = DefaultID
	}
	c := m.Get(id)
	if c == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, id))
		return
	}
	if c.Archived() && r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusGone, fmt.Errorf("campaign %q is archived", c.ID()))
		return
	}
	m.forward(c, w, r, r.URL.Path)
}

// handleStatus implements GET /v1/status: the default campaign's status
// extended with the cross-campaign rollup (?campaign= serves one
// campaign's plain status instead).
func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("campaign"); id != "" {
		c := m.Get(id)
		if c == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrNotFound, id))
			return
		}
		m.forward(c, w, r, r.URL.Path)
		return
	}
	var resp ManagerStatus
	if d := m.Default(); d != nil {
		if snap := d.srv.Snapshot(); snap != nil {
			resp.StatusResponse = snap.Status
		}
	}
	resp.Campaigns = []Rollup{}
	for _, c := range m.List() {
		resp.Campaigns = append(resp.Campaigns, m.rollup(c))
	}
	writeJSON(w, http.StatusOK, resp)
}

// forward hands the request to the campaign's server under a rewritten
// path. A shallow clone keeps the body, headers and context (request IDs,
// traceparent) intact while the inner mux re-matches the path.
func (m *Manager) forward(c *Campaign, w http.ResponseWriter, r *http.Request, path string) {
	r2 := new(http.Request)
	*r2 = *r
	u := *r.URL
	u.Path = path
	r2.URL = &u
	c.srv.ServeHTTP(w, r2)
}
