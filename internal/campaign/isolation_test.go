package campaign

import (
	"bytes"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"snaptask/internal/server"
	"snaptask/internal/telemetry/slo"
)

// blockWriter blocks the first Write until released — handed to
// Server.WriteState it pins the campaign's owner lock, simulating a stuck
// owner path in exactly one shard.
type blockWriter struct {
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func newBlockWriter() *blockWriter {
	return &blockWriter{gate: make(chan struct{}), entered: make(chan struct{})}
}

func (b *blockWriter) Write(p []byte) (int, error) {
	b.once.Do(func() { close(b.entered) })
	<-b.gate
	return len(p), nil
}

func (b *blockWriter) release() { close(b.gate) }

// blockOwner pins a campaign's owner lock via WriteState until the
// returned release func is called.
func blockOwner(t *testing.T, c *Campaign) (release func()) {
	t.Helper()
	bw := newBlockWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = c.Server().WriteState(bw)
	}()
	select {
	case <-bw.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("owner block never engaged")
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			bw.release()
			<-done
		})
	}
}

// gaugeValue scrapes one labelled series from the rendered exposition.
func gaugeValue(t *testing.T, m *Manager, name, campaign string) float64 {
	t.Helper()
	var buf bytes.Buffer
	m.cfg.Telemetry.Registry.Render(&buf)
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s\{campaign="%s"\} ([0-9.eE+-]+)$`, name, campaign))
	sub := re.FindStringSubmatch(buf.String())
	if sub == nil {
		return 0
	}
	v, err := strconv.ParseFloat(sub[1], 64)
	if err != nil {
		t.Fatalf("parse %s{campaign=%q}: %v", name, campaign, err)
	}
	return v
}

// TestConcurrentIngestIsolation is the -race shard-isolation check: four
// campaigns ingest simultaneously, then one campaign's owner is blocked
// and uploads to the other three must still complete promptly — observable
// through the per-campaign admission queue-depth series.
func TestConcurrentIngestIsolation(t *testing.T) {
	m, ts := newTestManager(t, ManagerConfig{
		Admission: &server.AdmissionConfig{MaxQueue: 16},
	})
	specs := []Spec{
		{ID: "c1", Venue: "small", Seed: 41},
		{ID: "c2", Venue: "small", Seed: 42},
		{ID: "c3", Venue: "small", Seed: 43},
		{ID: "c4", Venue: "small", Seed: 44},
	}
	for _, sp := range specs {
		if _, err := m.Create(sp); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: all four campaigns bootstrap and sweep concurrently.
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp Spec) {
			defer wg.Done()
			base := campaignBase(ts, sp.ID)
			bootstrapCampaign(t, base, sp, int64(100+i))
			for k := 0; k < 3; k++ {
				if !sweepUpload(t, base, sp, int64(200+10*i+k)) {
					break
				}
			}
		}(i, sp)
	}
	wg.Wait()

	// Phase 2: pin c1's owner lock and park an upload behind it.
	release := blockOwner(t, m.Get("c1"))
	defer release()
	uploadDone := make(chan int, 1)
	go func() {
		code := postJSON(t, campaignBase(ts, "c1")+"/photos",
			server.UploadRequest{Photos: []server.PhotoDTO{{}}}, nil)
		uploadDone <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for gaugeValue(t, m, "snaptask_admission_queue_depth", "c1") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("c1 queue depth never rose while its owner was blocked")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The other shards must not be delayed by c1's stall: their uploads
	// complete, and their queues stay empty once served.
	start := time.Now()
	for i, sp := range specs[1:] {
		sweepUpload(t, campaignBase(ts, sp.ID), sp, int64(300+i))
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("uploads to unblocked campaigns took %v with c1 stalled", elapsed)
	}
	for _, id := range []string{"c2", "c3", "c4"} {
		if d := gaugeValue(t, m, "snaptask_admission_queue_depth", id); d != 0 {
			t.Errorf("campaign %s queue depth %v while only c1 is blocked", id, d)
		}
	}
	if d := gaugeValue(t, m, "snaptask_admission_queue_depth", "c1"); d < 1 {
		t.Errorf("c1 queue depth %v, want >= 1 while blocked", d)
	}

	// Release c1: the parked upload must drain (it carries a junk photo,
	// so any terminal status is fine — only liveness is asserted).
	release()
	select {
	case <-uploadDone:
	case <-time.After(15 * time.Second):
		t.Fatal("parked c1 upload never drained after release")
	}
}

// TestAdmissionIsolationSLO drives one campaign into 429s (bounded owner
// queue behind a pinned lock) and asserts the sibling campaign keeps
// serving with a healthy SLO and zero sheds.
func TestAdmissionIsolationSLO(t *testing.T) {
	m, ts := newTestManager(t, ManagerConfig{
		Admission: &server.AdmissionConfig{MaxQueue: 1},
	})
	quiet := Spec{ID: "quiet", Venue: "small", Seed: 51}
	noisy := Spec{ID: "noisy", Venue: "small", Seed: 52}
	for _, sp := range []Spec{quiet, noisy} {
		if _, err := m.Create(sp); err != nil {
			t.Fatal(err)
		}
		bootstrapCampaign(t, campaignBase(ts, sp.ID), sp, 3)
	}

	release := blockOwner(t, m.Get("noisy"))
	defer release()

	// Flood noisy: one request may park in the queue slot, the rest must
	// shed with 429 + Retry-After.
	const floods = 8
	codes := make(chan int, floods)
	for i := 0; i < floods; i++ {
		go func() {
			codes <- postJSON(t, campaignBase(ts, "noisy")+"/photos",
				server.UploadRequest{Photos: []server.PhotoDTO{{}}}, nil)
		}()
	}
	sheds := 0
	for i := 0; i < floods-1; i++ {
		select {
		case code := <-codes:
			if code == http.StatusTooManyRequests {
				sheds++
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("flood responses stalled after %d", i)
		}
	}
	if sheds == 0 {
		t.Fatal("no 429s from the flooded campaign")
	}

	// Meanwhile quiet keeps working: its dispatcher grants claims promptly
	// and the claim SLO stays healthy. (Upload latency is not asserted —
	// SfM ingest legitimately exceeds its latency target under the race
	// detector's slowdown, which is unrelated to noisy's sheds.)
	base := campaignBase(ts, "quiet")
	if code := postJSON(t, base+"/workers", server.RegisterWorkerRequest{ID: "qw"}, nil); code != http.StatusOK {
		t.Fatalf("quiet register: code %d", code)
	}
	grants := 0
	for k := 0; k < 4; k++ {
		code := postJSON(t, base+"/task/claim", server.ClaimRequest{WorkerID: "qw"}, nil)
		switch code {
		case http.StatusOK:
			grants++
		case http.StatusNotFound:
		default:
			t.Fatalf("quiet claim: code %d", code)
		}
	}
	if grants == 0 {
		t.Fatal("quiet campaign granted no claims while noisy sheds")
	}
	var report slo.Report
	if code := getJSON(t, base+"/slo", &report); code != http.StatusOK {
		t.Fatalf("quiet slo: code %d", code)
	}
	foundClaim := false
	for _, ep := range report.Endpoints {
		if ep.Endpoint != "claim" {
			continue
		}
		foundClaim = true
		if ep.Burning {
			t.Errorf("quiet campaign claim SLO burning while noisy sheds")
		}
	}
	if !foundClaim {
		t.Fatal("quiet slo report has no claim endpoint")
	}

	// The 429s land in noisy's own SLO accounting as bad requests.
	var noisyReport slo.Report
	if code := getJSON(t, campaignBase(ts, "noisy")+"/slo", &noisyReport); code != http.StatusOK {
		t.Fatalf("noisy slo: code %d", code)
	}
	noisyBad := uint64(0)
	for _, ep := range noisyReport.Endpoints {
		if ep.Endpoint != "upload" {
			continue
		}
		for _, w := range ep.Windows {
			if w.Bad > noisyBad {
				noisyBad = w.Bad
			}
		}
	}
	if noisyBad == 0 {
		t.Error("noisy campaign's sheds not visible in its SLO windows")
	}

	// Shed accounting is per campaign: noisy counted, quiet untouched.
	var buf bytes.Buffer
	m.cfg.Telemetry.Registry.Render(&buf)
	out := buf.String()
	re := regexp.MustCompile(`(?m)^snaptask_requests_shed_total\{campaign="noisy",cause="queue_full"\} ([0-9]+)$`)
	sub := re.FindStringSubmatch(out)
	if sub == nil || sub[1] == "0" {
		t.Fatalf("no queue_full sheds recorded for noisy campaign")
	}
	if regexp.MustCompile(`snaptask_requests_shed_total\{campaign="quiet"`).MatchString(out) {
		t.Error("quiet campaign recorded sheds")
	}

	// Drain: release the owner and collect the parked request.
	release()
	select {
	case <-codes:
	case <-time.After(15 * time.Second):
		t.Fatal("parked noisy upload never drained")
	}
}
