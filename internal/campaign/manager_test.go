package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snaptask/internal/camera"
	"snaptask/internal/core"
	"snaptask/internal/geom"
	"snaptask/internal/server"
	"snaptask/internal/telemetry"
	"snaptask/internal/venue"
)

func testTelemetry() *telemetry.Telemetry {
	return telemetry.New(slog.New(slog.NewTextHandler(io.Discard, nil)), 8)
}

// newTestManager builds a manager with a default campaign over the small
// test room and an httptest server in front of it.
func newTestManager(t *testing.T, cfg ManagerConfig) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = testTelemetry()
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = time.Minute
	}
	cfg.SLO = true
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDefault(Spec{Venue: "small", Seed: 1}, nil, ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	ts := httptest.NewServer(m)
	t.Cleanup(ts.Close)
	return m, ts
}

// campaignWorld rebuilds the deterministic world a campaign spec implies,
// so tests can capture photos the campaign's model will accept.
func campaignWorld(t *testing.T, spec Spec) (*venue.Venue, *camera.World) {
	t.Helper()
	v, err := venue.ByName(spec.Venue, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return v, camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(spec.Seed))))
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	payload, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// bootstrapCampaign uploads the entrance capture to one campaign's scoped
// upload route, seeding its model with tasks.
func bootstrapCampaign(t *testing.T, base string, spec Spec, seed int64) {
	t.Helper()
	v, w := campaignWorld(t, spec)
	rng := rand.New(rand.NewSource(seed))
	photos, err := core.BootstrapCapture(w, v, camera.DefaultIntrinsics(), rng)
	if err != nil {
		t.Fatal(err)
	}
	req := server.UploadRequest{Bootstrap: true}
	for _, p := range photos {
		req.Photos = append(req.Photos, server.PhotoToDTO(p))
	}
	var up server.UploadResponse
	if code := postJSON(t, base+"/photos", req, &up); code != http.StatusOK {
		t.Fatalf("bootstrap %s: code %d", base, code)
	}
}

// sweepUpload fulfils one pending task over the campaign-scoped routes
// (fetch via the legacy peek, sweep, upload). Returns false when the
// campaign reports no pending task or is covered.
func sweepUpload(t *testing.T, base string, spec Spec, seed int64) bool {
	t.Helper()
	v, w := campaignWorld(t, spec)
	var task server.TaskDTO
	code := getJSON(t, base+"/task", &task)
	if code == http.StatusNotFound || task.Covered {
		return false
	}
	if code != http.StatusOK {
		t.Fatalf("GET %s/v1/task: code %d", base, code)
	}
	pos := geom.V2(task.X, task.Y)
	if v.Blocked(pos) {
		pos = v.Entrance()
	}
	rng := rand.New(rand.NewSource(seed))
	sweep, err := w.Sweep(pos, camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := server.UploadRequest{TaskID: task.ID, LocX: task.X, LocY: task.Y,
		SeedX: task.SeedX, SeedY: task.SeedY, HasSeed: task.HasSeed}
	for _, p := range sweep {
		req.Photos = append(req.Photos, server.PhotoToDTO(p))
	}
	var up server.UploadResponse
	if code := postJSON(t, base+"/photos", req, &up); code != http.StatusOK {
		t.Fatalf("sweep upload %s: code %d", base, code)
	}
	return true
}

func campaignBase(ts *httptest.Server, id string) string {
	return ts.URL + "/v1/campaigns/" + id
}

func TestLifecycleHTTP(t *testing.T) {
	m, ts := newTestManager(t, ManagerConfig{})

	// Create.
	var created Rollup
	if code := postJSON(t, ts.URL+"/v1/campaigns", Spec{ID: "alpha", Venue: "small", Seed: 7}, &created); code != http.StatusCreated {
		t.Fatalf("create: code %d", code)
	}
	if created.ID != "alpha" || created.Venue != "small" {
		t.Fatalf("create rollup: %+v", created)
	}

	// Duplicate, bad ID, bad venue, reserved ID.
	if code := postJSON(t, ts.URL+"/v1/campaigns", Spec{ID: "alpha", Venue: "small"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: code %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", Spec{ID: "Bad/ID", Venue: "small"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id create: code %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", Spec{ID: "default", Venue: "small"}, nil); code != http.StatusBadRequest {
		t.Fatalf("reserved id create: code %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/campaigns", Spec{ID: "beta", Venue: "nope"}, nil); code >= 200 && code < 300 {
		t.Fatalf("bogus venue accepted: code %d", code)
	}

	// List: default first, then alpha.
	var list ListResponse
	if code := getJSON(t, ts.URL+"/v1/campaigns", &list); code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	}
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != DefaultID || list.Campaigns[1].ID != "alpha" {
		t.Fatalf("list: %+v", list.Campaigns)
	}

	// Get.
	var got Rollup
	if code := getJSON(t, campaignBase(ts, "alpha"), &got); code != http.StatusOK || got.ID != "alpha" {
		t.Fatalf("get: code %d rollup %+v", code, got)
	}
	if code := getJSON(t, campaignBase(ts, "ghost"), nil); code != http.StatusNotFound {
		t.Fatalf("get unknown: code %d", code)
	}

	// Scoped routes hit the owning campaign.
	var st server.StatusResponse
	if code := getJSON(t, campaignBase(ts, "alpha")+"/status", &st); code != http.StatusOK {
		t.Fatalf("scoped status: code %d", code)
	}
	if code := getJSON(t, campaignBase(ts, "ghost")+"/status", nil); code != http.StatusNotFound {
		t.Fatalf("scoped status unknown campaign: code %d", code)
	}

	// Archive: mutations 410, reads still fine, idempotent, default refused.
	if code := postJSON(t, campaignBase(ts, "alpha")+"/archive", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("archive: code %d", code)
	}
	if !m.Get("alpha").Archived() {
		t.Fatal("alpha not archived")
	}
	if code := postJSON(t, campaignBase(ts, "alpha")+"/photos", server.UploadRequest{}, nil); code != http.StatusGone {
		t.Fatalf("archived mutation: code %d, want 410", code)
	}
	if code := getJSON(t, campaignBase(ts, "alpha")+"/status", &st); code != http.StatusOK {
		t.Fatalf("archived read: code %d", code)
	}
	if code := postJSON(t, campaignBase(ts, "alpha")+"/archive", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("re-archive: code %d", code)
	}
	if code := postJSON(t, campaignBase(ts, DefaultID)+"/archive", struct{}{}, nil); code != http.StatusBadRequest {
		t.Fatalf("archive default: code %d, want 400", code)
	}
}

func TestStatusRollupAndMetrics(t *testing.T) {
	m, ts := newTestManager(t, ManagerConfig{})
	spec := Spec{ID: "east-wing", Venue: "small", Seed: 21}
	if _, err := m.Create(spec); err != nil {
		t.Fatal(err)
	}
	bootstrapCampaign(t, campaignBase(ts, "east-wing"), spec, 5)

	// /v1/status: default campaign's fields plus the campaigns section.
	var ms ManagerStatus
	if code := getJSON(t, ts.URL+"/v1/status", &ms); code != http.StatusOK {
		t.Fatalf("status: code %d", code)
	}
	if len(ms.Campaigns) != 2 {
		t.Fatalf("status campaigns: %+v", ms.Campaigns)
	}
	var east *Rollup
	for i := range ms.Campaigns {
		if ms.Campaigns[i].ID == "east-wing" {
			east = &ms.Campaigns[i]
		}
	}
	if east == nil || east.PhotosProcessed == 0 || east.PendingTasks == 0 {
		t.Fatalf("east-wing rollup after bootstrap: %+v", east)
	}

	// ?campaign= scopes the bare route to one campaign (plain status shape).
	var st server.StatusResponse
	if code := getJSON(t, ts.URL+"/v1/status?campaign=east-wing", &st); code != http.StatusOK {
		t.Fatalf("scoped status: code %d", code)
	}
	if st.PhotosProcessed != east.PhotosProcessed {
		t.Fatalf("scoped status photos %d, rollup %d", st.PhotosProcessed, east.PhotosProcessed)
	}

	// /metrics: per-campaign labels on existing families plus the
	// aggregate campaign gauges.
	var buf bytes.Buffer
	m.cfg.Telemetry.Registry.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		`{campaign="east-wing"`,
		`{campaign="default"`,
		"snaptask_campaigns_active 2",
		"snaptask_campaigns_archived 0",
		"snaptask_campaigns_pending_tasks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSharedWorkerPool(t *testing.T) {
	m, ts := newTestManager(t, ManagerConfig{})
	specs := []Spec{
		{ID: "wing-a", Venue: "small", Seed: 31},
		{ID: "wing-b", Venue: "small", Seed: 32},
	}
	for _, sp := range specs {
		if _, err := m.Create(sp); err != nil {
			t.Fatal(err)
		}
		bootstrapCampaign(t, campaignBase(ts, sp.ID), sp, 9)
	}

	// Claims from an unregistered worker are rejected.
	if code := postJSON(t, ts.URL+"/v1/pool/claim", server.ClaimRequest{WorkerID: "nobody"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown worker claim: code %d", code)
	}

	var reg PoolRegisterResponse
	if code := postJSON(t, ts.URL+"/v1/pool/workers", server.RegisterWorkerRequest{ID: "w1"}, &reg); code != http.StatusOK {
		t.Fatalf("pool register: code %d", code)
	}
	if reg.ID != "w1" {
		t.Fatalf("pool register id %q", reg.ID)
	}

	// The pool routes claims to whichever campaign has the most pending
	// work; over enough claims both bootstrapped campaigns must grant.
	granted := map[string]int{}
	for i := 0; i < 8; i++ {
		var resp PoolClaimResponse
		code := postJSON(t, ts.URL+"/v1/pool/claim", server.ClaimRequest{WorkerID: "w1"}, &resp)
		if code == http.StatusNotFound {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("pool claim %d: code %d", i, code)
		}
		if resp.AllCovered {
			break
		}
		if resp.Campaign == "" || resp.Task.ID == 0 {
			t.Fatalf("pool claim %d: %+v", i, resp)
		}
		granted[resp.Campaign]++
	}
	if len(granted) < 2 {
		t.Fatalf("pool claims did not spread across campaigns: %v", granted)
	}
	// The default campaign was never bootstrapped: no pending tasks, so
	// the pool must not have enrolled the worker there.
	if granted[DefaultID] != 0 {
		t.Fatalf("pool claimed from the empty default campaign: %v", granted)
	}
	// Archived campaigns leave the pool.
	if _, err := m.Archive("wing-a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var resp PoolClaimResponse
		code := postJSON(t, ts.URL+"/v1/pool/claim", server.ClaimRequest{WorkerID: "w1"}, &resp)
		if code == http.StatusNotFound {
			break
		}
		if resp.Campaign == "wing-a" {
			t.Fatal("pool claimed from an archived campaign")
		}
	}
}
