package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snaptask/internal/client"
	"snaptask/internal/events"
)

// TestSSECampaignFramesAndEviction streams one campaign's events while two
// campaigns emit concurrently: every frame must carry the owning
// campaign's ID, a deliberately slow consumer must be evicted at least
// once, and reconnecting with the last seen sequence must yield a gap-free
// feed.
func TestSSECampaignFramesAndEviction(t *testing.T) {
	root := t.TempDir()
	m, err := NewManager(ManagerConfig{
		JournalRoot: root,
		Telemetry:   testTelemetry(),
		LeaseTTL:    time.Minute,
		SLO:         true,
		SSEBuf:      4, // tiny server-side buffer: slow consumers evict fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateDefault(Spec{Venue: "small", Seed: 1}, nil, ""); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	left := Spec{ID: "left", Venue: "small", Seed: 71}
	right := Spec{ID: "right", Venue: "small", Seed: 72}
	for _, sp := range []Spec{left, right} {
		if _, err := m.Create(sp); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(m)
	defer ts.Close()

	// Real ingest first, so the stream carries genuine lifecycle frames.
	bootstrapCampaign(t, campaignBase(ts, "left"), left, 3)
	bootstrapCampaign(t, campaignBase(ts, "right"), right, 4)

	// The consumer stalls completely after its first frame (blocking the
	// TCP pipe, so the server-side 4-slot buffer must overflow), while
	// both campaigns emit concurrently. The emitter keeps bursting until
	// the eviction counter confirms the stream was dropped.
	stalled := make(chan struct{})
	resume := make(chan struct{})
	var stallOnce sync.Once
	var emitters sync.WaitGroup
	var finalSeq atomic.Uint64
	emitters.Add(2)
	go func() { // right: a concurrent emitter on the sibling campaign
		defer emitters.Done()
		<-stalled
		log := m.Get("right").Log()
		for i := 0; i < 150; i++ {
			log.Emit(events.Event{Kind: events.KindCoverageDelta, Delta: 1})
		}
	}()
	go func() { // left: burst until the stalled subscriber is evicted
		defer emitters.Done()
		<-stalled
		log := m.Get("left").Log()
		for burst := 0; burst < 400; burst++ {
			for i := 0; i < 500; i++ {
				log.Emit(events.Event{Kind: events.KindCoverageDelta, Delta: 1})
			}
			if gaugeValue(t, m, "snaptask_events_dropped_subscribers_total", "left") > 0 {
				return
			}
		}
		t.Error("left subscriber never evicted after 200k events")
	}()
	go func() {
		emitters.Wait()
		finalSeq.Store(m.Get("left").Log().LastSeq())
		close(resume)
	}()

	cl := client.New(ts.URL, nil).WithCampaign("left")
	errDone := errors.New("done")
	var (
		last      uint64
		evictions int
	)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for {
		err := cl.Events(ctx, last, func(e events.Event) error {
			if e.Campaign != "left" {
				return errors.New("frame from campaign " + e.Campaign + " on left stream")
			}
			if e.Seq != last+1 {
				t.Errorf("gap: seq %d after %d", e.Seq, last)
			}
			last = e.Seq
			stallOnce.Do(func() {
				close(stalled)
				<-resume
			})
			if f := finalSeq.Load(); f > 0 && last >= f {
				return errDone
			}
			return nil
		})
		if errors.Is(err, errDone) {
			break
		}
		if errors.Is(err, client.ErrEvicted) {
			evictions++
			continue
		}
		if err != nil {
			t.Fatalf("events stream: %v", err)
		}
	}
	if evictions == 0 {
		t.Error("stalled consumer was never evicted (SSEBuf not honoured?)")
	}
	if f := finalSeq.Load(); last != f {
		t.Fatalf("reader stopped at seq %d, want %d", last, f)
	}

	// The bare legacy route filters (= routes) by ?campaign: frames on
	// /v1/events?campaign=right all belong to right.
	func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/events?campaign=right&after=0", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("filtered events: code %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		seen := 0
		for sc.Scan() && seen < 20 {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e events.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("decode filtered frame: %v", err)
			}
			if e.Campaign != "right" {
				t.Fatalf("?campaign=right frame belongs to %q", e.Campaign)
			}
			seen++
		}
		if seen == 0 {
			t.Fatal("no frames on the filtered stream")
		}
	}()
}
