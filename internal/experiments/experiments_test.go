package experiments

import (
	"testing"

	"snaptask/internal/core"
	"snaptask/internal/metrics"
	"snaptask/internal/taskgen"
	"snaptask/internal/venue"
)

func smallSetup(t *testing.T) *Setup {
	t.Helper()
	v, err := venue.SmallRoom()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := NewSetup(v, 1, core.Config{Margin: 3})
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

func TestNewLibrarySetup(t *testing.T) {
	setup, err := NewLibrarySetup(1, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if setup.Venue.Name() != "aalto-library" {
		t.Errorf("venue = %q", setup.Venue.Name())
	}
	if setup.TruthCov.CountPositive() == 0 {
		t.Error("empty truth coverage")
	}
	if !setup.Layout.SameLayout(setup.GT.Obstacles) {
		t.Error("ground truth not on the system layout")
	}
	if setup.WalkMap.CountPositive() <= setup.GT.Obstacles.CountPositive() {
		t.Error("walk map should block outside cells too")
	}
}

func TestBuildUnguidedDeterministicAndCapped(t *testing.T) {
	setup := smallSetup(t)
	a, err := setup.BuildUnguided(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := setup.BuildUnguided(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic dataset: %d vs %d", len(a), len(b))
	}
	capped, err := setup.BuildUnguided(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 50 {
		t.Errorf("cap ignored: %d", len(capped))
	}
}

func TestBuildOpportunistic(t *testing.T) {
	setup := smallSetup(t)
	photos, paths, err := setup.BuildOpportunistic(6, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(photos) == 0 || len(paths) == 0 {
		t.Fatalf("dataset empty: %d photos, %d paths", len(photos), len(paths))
	}
	// Extraction with a bigger window keeps fewer frames.
	wide, _, err := setup.BuildOpportunistic(6, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) >= len(photos) {
		t.Errorf("window 60 kept %d >= window 15 kept %d", len(wide), len(photos))
	}
}

func TestEvaluateIncremental(t *testing.T) {
	setup := smallSetup(t)
	photos, err := setup.BuildUnguided(7, 120)
	if err != nil {
		t.Fatal(err)
	}
	res, err := setup.EvaluateIncremental(photos, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 3 {
		t.Fatalf("curve points = %d, want 3", len(res.Curve))
	}
	// Photos axis is cumulative.
	if res.Curve[0].Photos != 40 || res.Curve[2].Photos != 120 {
		t.Errorf("photo axis wrong: %+v", res.Curve)
	}
	// Coverage cannot decrease as photos accumulate (monotone model).
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].CoveragePct < res.Curve[i-1].CoveragePct-3 {
			t.Errorf("coverage dropped sharply: %+v", res.Curve)
		}
	}
	if res.FinalMaps == nil || res.DatasetSize != 120 {
		t.Error("result incomplete")
	}
	if _, err := setup.EvaluateIncremental(photos, 0, 8); err == nil {
		t.Error("chunk 0 should error")
	}
}

func TestEvaluateIncrementalEmptyDataset(t *testing.T) {
	setup := smallSetup(t)
	res, err := setup.EvaluateIncremental(nil, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 1 || res.FinalMaps == nil {
		t.Errorf("empty dataset should yield the bare initial model: %+v", res.Curve)
	}
}

func TestRunGuidedSmall(t *testing.T) {
	setup := smallSetup(t)
	res, err := setup.RunGuided(10, GuidedOptions{MaxTasks: 50, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("not covered in %d tasks", len(res.Loop.Iterations))
	}
	if len(res.Curve) != len(res.Loop.Iterations) {
		t.Errorf("curve/iteration mismatch: %d vs %d", len(res.Curve), len(res.Loop.Iterations))
	}
	if len(res.Marks) != len(res.Curve) {
		t.Error("marks mismatch")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.CoveragePct < 90 || last.BoundsPct < 90 {
		t.Errorf("small room final: bounds %.1f coverage %.1f", last.BoundsPct, last.CoveragePct)
	}
	if len(res.Snapshots) == 0 {
		t.Error("no snapshots despite SnapshotEvery")
	}
	// Photos monotone along the curve.
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Photos < res.Curve[i-1].Photos {
			t.Fatal("photos axis not monotone")
		}
	}
	// Marks enumerate task kinds coherently.
	for i, m := range res.Marks {
		if m.Seq != i+1 {
			t.Fatal("mark sequence broken")
		}
		if m.Kind != taskgen.KindPhoto && m.Kind != taskgen.KindAnnotation {
			t.Fatal("unknown mark kind")
		}
	}
}

func TestAggregatePRF(t *testing.T) {
	if got := AggregatePRF(nil); got != (metrics.PRF{}) {
		t.Error("empty aggregate should be zero")
	}
	rows := []AnnotationRow{
		{Task: 1, Reconstructed: 1, PRF: metrics.PRF{Precision: 1.0, Recall: 0.8, F: 0.89}},
		{Task: 2, Reconstructed: 0, PRF: metrics.PRF{}}, // excluded
		{Task: 3, Reconstructed: 2, PRF: metrics.PRF{Precision: 0.9, Recall: 0.6, F: 0.72}},
	}
	agg := AggregatePRF(rows)
	if agg.Precision < 0.94 || agg.Precision > 0.96 {
		t.Errorf("precision = %v, want 0.95", agg.Precision)
	}
	if agg.F < 0.80 || agg.F > 0.81 {
		t.Errorf("F = %v", agg.F)
	}
	// All-failed rows aggregate to zero.
	if got := AggregatePRF(rows[1:2]); got != (metrics.PRF{}) {
		t.Errorf("all-failed aggregate = %+v", got)
	}
}
