// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): the guided field test with its per-task map
// growth (Figure 10), the outer-bounds and model-coverage curves comparing
// the three crowdsourcing approaches (Figures 11a/11b), the final map
// renders (Figure 12), the featureless-surface reconstruction analysis
// (Table I), and the task-position bookkeeping (Figures 8–9).
package experiments

import (
	"fmt"
	"math/rand"

	"snaptask/internal/annotation"
	"snaptask/internal/camera"
	"snaptask/internal/core"
	"snaptask/internal/crowd"
	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/mapping"
	"snaptask/internal/metrics"
	"snaptask/internal/nav"
	"snaptask/internal/pointcloud"
	"snaptask/internal/sfm"
	"snaptask/internal/taskgen"
	"snaptask/internal/venue"
)

// Setup bundles everything the experiments share: the library replica, its
// feature world, the system map layout, ground truth on that layout and
// the participants' walk map.
type Setup struct {
	Venue    *venue.Venue
	World    *camera.World
	Layout   *grid.Map
	GT       *venue.GroundTruth
	TruthCov *grid.Map
	WalkMap  *grid.Map
	Intr     camera.Intrinsics
	Config   core.Config
}

// NewLibrarySetup prepares the deterministic library experiment state for a
// seed.
func NewLibrarySetup(seed int64, cfg core.Config) (*Setup, error) {
	v, err := venue.Library()
	if err != nil {
		return nil, fmt.Errorf("experiments: venue: %w", err)
	}
	return newSetup(v, seed, cfg)
}

// NewSetup prepares experiment state over an arbitrary venue.
func NewSetup(v *venue.Venue, seed int64, cfg core.Config) (*Setup, error) {
	return newSetup(v, seed, cfg)
}

func newSetup(v *venue.Venue, seed int64, cfg core.Config) (*Setup, error) {
	feats := v.GenerateFeatures(rand.New(rand.NewSource(seed)))
	world := camera.NewWorld(v, feats)
	// A throwaway system supplies the canonical layout for the config.
	sys, err := core.NewSystem(v, world, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: layout: %w", err)
	}
	layout := sys.Layout()
	gt, err := v.GroundTruthAt(layout)
	if err != nil {
		return nil, fmt.Errorf("experiments: ground truth: %w", err)
	}
	truthCov, err := gt.Coverage()
	if err != nil {
		return nil, fmt.Errorf("experiments: truth coverage: %w", err)
	}
	return &Setup{
		Venue:    v,
		World:    world,
		Layout:   layout,
		GT:       gt,
		TruthCov: truthCov,
		WalkMap:  v.WalkMap(gt),
		Intr:     camera.DefaultIntrinsics(),
		Config:   cfg,
	}, nil
}

// CurvePoint is one sample of the Figure 11 curves.
type CurvePoint struct {
	// Photos is the cumulative number of crowdsourced input photos
	// (excluding the shared initial model).
	Photos int
	// BoundsPct is the reconstructed outer-bounds percentage (Fig. 11a).
	BoundsPct float64
	// CoveragePct is the model coverage percentage (Fig. 11b).
	CoveragePct float64
}

// evalModel converts a model into maps and scores them against ground
// truth.
func (s *Setup) evalModel(model *sfm.Model) (*mapping.Maps, CurvePoint, error) {
	cloud, _, err := pointcloud.StatisticalOutlierRemoval(model.Cloud(), s.Config.SOR)
	if err != nil {
		return nil, CurvePoint{}, fmt.Errorf("experiments: SOR: %w", err)
	}
	var views []mapping.View
	for _, v := range model.Views() {
		views = append(views, mapping.View{Pose: v.Pose, Intrinsics: v.Intrinsics})
	}
	maps, err := mapping.Build(cloud, views, s.Layout, s.Config.Mapping)
	if err != nil {
		return nil, CurvePoint{}, fmt.Errorf("experiments: maps: %w", err)
	}
	var p CurvePoint
	p.BoundsPct, err = metrics.OuterBoundsPercent(maps.Obstacles, s.Venue.OuterSurfaces(), metrics.BoundsMatchThreshold)
	if err != nil {
		return nil, CurvePoint{}, err
	}
	p.CoveragePct, err = metrics.CoveragePercent(maps.AspectCoverage(), s.TruthCov)
	if err != nil {
		return nil, CurvePoint{}, err
	}
	return maps, p, nil
}

// IncrementalResult is an unguided/opportunistic evaluation: the curve plus
// the final maps.
type IncrementalResult struct {
	Curve     []CurvePoint
	FinalMaps *mapping.Maps
	// DatasetSize is the number of photos in the dataset after filtering.
	DatasetSize int
}

// EvaluateIncremental reproduces the paper's §V-C1 method for the unguided
// and opportunistic datasets: start from the shared initial model, add the
// photo set in chunks (100 photos in the paper) and score the maps after
// each chunk.
func (s *Setup) EvaluateIncremental(photos []camera.Photo, chunk int, seed int64) (*IncrementalResult, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("experiments: chunk %d must be positive", chunk)
	}
	rng := rand.New(rand.NewSource(seed))
	model := sfm.NewModel(s.Config.SfM, s.World.Features())
	boot, err := core.BootstrapCapture(s.World, s.Venue, s.Intr, rng)
	if err != nil {
		return nil, err
	}
	if _, err := model.RegisterBatch(boot, rng); err != nil {
		return nil, err
	}

	res := &IncrementalResult{DatasetSize: len(photos)}
	var maps *mapping.Maps
	for start := 0; start < len(photos); start += chunk {
		end := start + chunk
		if end > len(photos) {
			end = len(photos)
		}
		if _, err := model.RegisterBatch(photos[start:end], rng); err != nil {
			return nil, err
		}
		m, point, err := s.evalModel(model)
		if err != nil {
			return nil, err
		}
		point.Photos = end
		res.Curve = append(res.Curve, point)
		maps = m
	}
	res.FinalMaps = maps
	if maps == nil {
		// Empty dataset: evaluate the bare initial model.
		m, point, err := s.evalModel(model)
		if err != nil {
			return nil, err
		}
		res.FinalMaps = m
		res.Curve = []CurvePoint{point}
	}
	return res, nil
}

// BuildOpportunistic produces the opportunistic dataset: participant
// videos, sliding-window sharpest-frame extraction (window 30 in the
// paper), capped at maxPhotos (700 extracted frames in the paper).
func (s *Setup) BuildOpportunistic(seed int64, window, maxPhotos int) ([]camera.Photo, []nav.Path, error) {
	rng := rand.New(rand.NewSource(seed))
	videos, err := crowd.Opportunistic(s.World, s.Venue, s.WalkMap, s.Intr, crowd.OpportunisticOptions{}, rng)
	if err != nil {
		return nil, nil, err
	}
	var photos []camera.Photo
	var paths []nav.Path
	for _, v := range videos {
		photos = append(photos, crowd.ExtractSharpest(v.Frames, window)...)
		paths = append(paths, v.Path)
	}
	if maxPhotos > 0 && len(photos) > maxPhotos {
		photos = photos[:maxPhotos]
	}
	return photos, paths, nil
}

// BuildUnguided produces the unguided participatory dataset (10×100 photos,
// blur-filtered; 903 kept in the paper), capped at maxPhotos.
func (s *Setup) BuildUnguided(seed int64, maxPhotos int) ([]camera.Photo, error) {
	rng := rand.New(rand.NewSource(seed))
	photos, err := crowd.Unguided(s.World, s.Venue, s.Intr, crowd.UnguidedOptions{}, rng)
	if err != nil {
		return nil, err
	}
	if maxPhotos > 0 && len(photos) > maxPhotos {
		photos = photos[:maxPhotos]
	}
	return photos, nil
}

// AnnotationRow is one Table I line.
type AnnotationRow struct {
	Task          int
	Identified    int
	Reconstructed int
	PRF           metrics.PRF
}

// TaskMark is one Figure 9 marker: where a task was issued and where it
// was executed.
type TaskMark struct {
	Seq      int
	Kind     taskgen.Kind
	Issued   geom.Vec2
	Executed geom.Vec2
}

// GuidedResult is the full guided field test output.
type GuidedResult struct {
	Curve     []CurvePoint
	Loop      core.LoopResult
	FinalMaps *mapping.Maps
	TableI    []AnnotationRow
	Marks     []TaskMark
	// Snapshots holds per-task ASCII map renders for Figure 10 (sampled).
	Snapshots []string
	Covered   bool
}

// GuidedOptions tunes RunGuided.
type GuidedOptions struct {
	// MaxTasks bounds the loop (default 240).
	MaxTasks int
	// SnapshotEvery renders an ASCII map after every n-th task (0 = no
	// snapshots).
	SnapshotEvery int
	// WorkerBlurProb makes the guided worker occasionally produce
	// blurred sweeps.
	WorkerBlurProb float64
}

// RunGuided executes the full SnapTask field test on the setup and gathers
// every evaluation artefact.
func (s *Setup) RunGuided(seed int64, opts GuidedOptions) (*GuidedResult, error) {
	if opts.MaxTasks == 0 {
		opts.MaxTasks = 240
	}
	rng := rand.New(rand.NewSource(seed))
	// The guided loop's annotation pipeline injects artificial features
	// into its world; run it on a clone so the setup's world — shared by
	// the baseline dataset builders — stays pristine.
	world := s.World.Clone()
	sys, err := core.NewSystem(s.Venue, world, s.Config)
	if err != nil {
		return nil, err
	}
	worker := &crowd.GuidedWorker{
		World:      world,
		Venue:      s.Venue,
		Intrinsics: s.Intr,
		Pos:        s.Venue.Entrance(),
		BlurProb:   opts.WorkerBlurProb,
	}

	out := &GuidedResult{}
	snapshot := func() {
		m := sys.Maps()
		if r, err := metrics.RenderASCII(m.Obstacles, m.Visibility, s.TruthCov); err == nil {
			out.Snapshots = append(out.Snapshots, r)
		}
	}
	onIter := func(it core.Iteration) {
		_, point, err := s.evalModel(sys.Model())
		if err != nil {
			return
		}
		point.Photos = it.PhotosUsed
		out.Curve = append(out.Curve, point)
		out.Marks = append(out.Marks, TaskMark{
			Seq:      len(out.Marks) + 1,
			Kind:     it.Task.Kind,
			Issued:   it.Task.Location,
			Executed: it.Task.Location, // refined below for annotation rows
		})
		if it.Annotation != nil && it.AnnotationTask != nil {
			out.TableI = append(out.TableI, s.scoreAnnotation(len(out.TableI)+1, *it.Annotation, *it.AnnotationTask))
		}
		if opts.SnapshotEvery > 0 && len(out.Marks)%opts.SnapshotEvery == 0 {
			snapshot()
		}
	}

	loop, err := core.RunGuidedLoop(sys, worker, s.WalkMap, core.LoopOptions{
		MaxTasks:    opts.MaxTasks,
		OnIteration: onIter,
	}, rng)
	if err != nil {
		return nil, err
	}
	out.Loop = loop
	out.Covered = loop.Covered
	out.FinalMaps = sys.Maps()
	snapshot()
	return out, nil
}

// scoreAnnotation computes one Table I row: precision/recall/F of the
// reconstruction against the task's true surface and its visible stretch.
func (s *Setup) scoreAnnotation(seq int, recon annotation.ReconResult, task annotation.Task) AnnotationRow {
	row := AnnotationRow{
		Task:          seq,
		Identified:    recon.Identified,
		Reconstructed: recon.Reconstructed,
	}
	var truth *venue.Surface
	for _, surf := range s.Venue.Surfaces() {
		if surf.ID == task.TruthSurfaceID {
			sc := surf
			truth = &sc
		}
	}
	if truth == nil {
		return row
	}
	// The recall denominator is the stretch visible in the WHOLE photo
	// set — the paper's workers mark "the exact same 4 corners" in every
	// photo, so only the common stretch is annotatable.
	common := metrics.Interval{Lo: 0, Hi: truth.Seg.Len()}
	any := false
	for _, p := range task.Photos {
		if lo, hi, ok := annotation.VisibleRange(p, *truth); ok {
			any = true
			if lo > common.Lo {
				common.Lo = lo
			}
			if hi < common.Hi {
				common.Hi = hi
			}
		}
	}
	var visible []metrics.Interval
	if any && common.Hi > common.Lo {
		visible = append(visible, common)
	}
	var spans []geom.Segment
	for _, sr := range recon.Surfaces {
		spans = append(spans, sr.Span())
	}
	row.PRF = metrics.FeaturelessPRF(spans, *truth, visible, 0.25)
	return row
}

// AggregatePRF averages Table I rows as the paper reports ("on average
// 98.14% precision and 90.23% F-score"). Rows with no reconstruction are
// included with zero scores.
func AggregatePRF(rows []AnnotationRow) metrics.PRF {
	if len(rows) == 0 {
		return metrics.PRF{}
	}
	var sum metrics.PRF
	n := 0
	for _, r := range rows {
		if r.Reconstructed == 0 {
			continue
		}
		sum.Precision += r.PRF.Precision
		sum.Recall += r.PRF.Recall
		sum.F += r.PRF.F
		n++
	}
	if n == 0 {
		return metrics.PRF{}
	}
	return metrics.PRF{
		Precision: sum.Precision / float64(n),
		Recall:    sum.Recall / float64(n),
		F:         sum.F / float64(n),
	}
}
