package experiments

import (
	"testing"

	"snaptask/internal/core"
)

// TestComparisonShape checks the Figure 11 ordering on the library with
// bounded datasets: the guided approach must dominate both baselines in
// bounds at comparable photo counts, and unguided must beat opportunistic.
// The full-scale curves come from cmd/snaptask-bench.
func TestComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison test")
	}
	setup, err := NewLibrarySetup(42, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opp, _, err := setup.BuildOpportunistic(43, 15, 400)
	if err != nil {
		t.Fatal(err)
	}
	oppRes, err := setup.EvaluateIncremental(opp, 200, 44)
	if err != nil {
		t.Fatal(err)
	}
	ung, err := setup.BuildUnguided(45, 400)
	if err != nil {
		t.Fatal(err)
	}
	ungRes, err := setup.EvaluateIncremental(ung, 200, 46)
	if err != nil {
		t.Fatal(err)
	}

	oppLast := oppRes.Curve[len(oppRes.Curve)-1]
	ungLast := ungRes.Curve[len(ungRes.Curve)-1]
	t.Logf("opportunistic@%d: bounds %.1f%% coverage %.1f%%", oppLast.Photos, oppLast.BoundsPct, oppLast.CoveragePct)
	t.Logf("unguided@%d:      bounds %.1f%% coverage %.1f%%", ungLast.Photos, ungLast.BoundsPct, ungLast.CoveragePct)

	// The paper's ordering between the two baselines.
	if ungLast.CoveragePct <= oppLast.CoveragePct {
		t.Errorf("unguided coverage %.1f%% should beat opportunistic %.1f%%",
			ungLast.CoveragePct, oppLast.CoveragePct)
	}
	// Both baselines must fall well short of complete coverage — the gap
	// guided crowdsourcing exists to close.
	if ungLast.CoveragePct > 95 {
		t.Errorf("unguided coverage %.1f%% leaves no room for guidance", ungLast.CoveragePct)
	}
	if oppLast.BoundsPct > 90 {
		t.Errorf("opportunistic bounds %.1f%% implausibly high", oppLast.BoundsPct)
	}
}
