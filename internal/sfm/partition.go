// Partitioned reconstruction: the venue is split into K spatial sub-regions,
// each owned by an independent sub-Model that registers and triangulates its
// photos concurrently with the others, and the per-partition clouds are merged
// into one global cloud with a cheap rigid alignment over shared boundary
// features — the low-memory sub-map merging shape of "Generic Merging of
// Structure from Motion Maps with a Low Memory Footprint" and MCGMapper's
// camera-group incremental SfM.
//
// Determinism rules (the properties the equivalence tests lean on):
//
//   - Routing is a pure function of pose: a photo (or, on the group path, a
//     batch centroid) lands in the strip covering its X coordinate.
//   - Each concurrent operation draws one sub-seed per participating
//     partition from the master rng IN PARTITION-INDEX ORDER, then runs each
//     partition on its own private rand.Rand. Goroutine scheduling therefore
//     cannot reorder rng draws.
//   - Merging (view-log folding, boundary dedup, alignment estimation) runs
//     sequentially in partition-index order.
//   - Boundary-feature ownership is sticky: the first partition whose
//     filtered cloud carries a feature owns its merged point forever, so a
//     feature cannot oscillate between copies as sub-maps grow.
//   - Per-partition alignment translations freeze after their first estimate
//     from >= alignMinMatches shared features, so merged geometry does not
//     jitter (and the mapping layer's cached ray casts stay valid) as more
//     boundary evidence accumulates.
//
// With K = 1 every operation short-circuits to the single sub-model with the
// caller's rng passed straight through, making the partitioned system
// bit-identical to the monolithic one — the cross-check the tests pin.
package sfm

import (
	"fmt"
	"math/rand"
	"sync"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
	"snaptask/internal/telemetry"
	"snaptask/internal/venue"
)

// alignMinMatches is how many shared boundary features a partition must see
// before its rigid-alignment translation is estimated and frozen.
const alignMinMatches = 8

// alignMaxMatches caps how many shared features feed one translation
// estimate; beyond this the mean is already stable and more terms only cost.
const alignMaxMatches = 32

// partition is one spatial sub-region: an independent sub-model plus its own
// incremental outlier-filter cache and merge bookkeeping.
type partition struct {
	model *Model
	sor   *pointcloud.IncrementalSOR

	// filtered is the partition's post-SOR cloud from the latest filter
	// pass; removed is that pass's outlier count.
	filtered *pointcloud.Cloud
	removed  int

	// viewMark is how many of the sub-model's views have been folded into
	// the merged view log.
	viewMark int

	// t is the rigid-alignment translation applied to this partition's
	// merged points; frozen once estimated from enough shared features.
	t       geom.Vec3
	aligned bool
}

// Partitioned is a spatially partitioned SfM model: K independent sub-models
// reconstructed concurrently and merged deterministically. Like Model it is
// not safe for concurrent use by callers — internal fan-out is the only
// parallelism — so the backend's single model owner drives it exactly as it
// drives a Model.
type Partitioned struct {
	cfg    Config
	sorOpt pointcloud.SOROptions
	bounds geom.AABB
	k      int
	parts  []*partition

	// owner maps a feature ID to the partition that owns its merged point
	// (sticky, first-claimer-wins in partition order).
	owner map[uint64]int

	// viewLog is the merged, append-only view list in fold order; viewSrc
	// records each entry's source partition so snapshots can rebuild the
	// exact interleaving.
	viewLog []View
	viewSrc []int32

	trace       *telemetry.Trace
	nextPhotoID int
}

// NewPartitioned builds a K-partition model over the venue bounds. Every
// partition sees the full feature oracle (a photo near a strip border
// observes features across it); only photo routing is spatial. k <= 1
// yields a single partition that behaves bit-identically to NewModel.
func NewPartitioned(cfg Config, features []venue.Feature, bounds geom.AABB, k int, sorOpt pointcloud.SOROptions) (*Partitioned, error) {
	if k < 1 {
		k = 1
	}
	if bounds.Empty() && k > 1 {
		return nil, fmt.Errorf("sfm: partitioned model needs non-empty bounds for k=%d", k)
	}
	pm := &Partitioned{
		cfg:    cfg,
		sorOpt: sorOpt,
		bounds: bounds,
		k:      k,
		owner:  make(map[uint64]int),
	}
	for i := 0; i < k; i++ {
		sor, err := pointcloud.NewIncrementalSOR(sorOpt)
		if err != nil {
			return nil, fmt.Errorf("sfm: partition %d SOR: %w", i, err)
		}
		pm.parts = append(pm.parts, &partition{
			model: NewModel(cfg, features),
			sor:   sor,
		})
	}
	return pm, nil
}

// K returns the partition count.
func (pm *Partitioned) K() int { return pm.k }

// Config returns the (defaults-resolved) sub-model configuration.
func (pm *Partitioned) Config() Config { return pm.parts[0].model.Config() }

// SetTrace points the partitioned pipeline's stage spans at the current
// batch trace. Sub-model spans are prefixed "p<i>." via trace.Sub, so a
// partitioned batch trace shows per-partition stage timings side by side.
func (pm *Partitioned) SetTrace(tr *telemetry.Trace) {
	pm.trace = tr
	if pm.k == 1 {
		pm.parts[0].model.SetTrace(tr)
		pm.parts[0].sor.SetTrace(tr)
	}
}

// AddWorldFeatures broadcasts new oracle features (annotation pipeline) to
// every partition.
func (pm *Partitioned) AddWorldFeatures(features []venue.Feature) {
	for _, p := range pm.parts {
		p.model.AddWorldFeatures(features)
	}
}

// NumViews returns the total registered views across partitions.
func (pm *Partitioned) NumViews() int {
	n := 0
	for _, p := range pm.parts {
		n += p.model.NumViews()
	}
	return n
}

// NumPoints returns the total triangulated points across partitions. A
// boundary feature triangulated by two partitions counts twice here (the
// merged cloud dedups it); the per-partition split is what PartStats serves.
func (pm *Partitioned) NumPoints() int {
	n := 0
	for _, p := range pm.parts {
		n += p.model.NumPoints()
	}
	return n
}

// PartStats returns partition i's view and (pre-dedup) point counts — the
// per-partition gauges.
func (pm *Partitioned) PartStats(i int) (views, points int) {
	return pm.parts[i].model.NumViews(), pm.parts[i].model.NumPoints()
}

// Part returns partition i's sub-model for inspection (tests, snapshots).
func (pm *Partitioned) Part(i int) *Model { return pm.parts[i].model }

// PartitionFor returns the partition index owning a position: equal-width
// strips along X of the venue bounds, clamped at the edges.
func (pm *Partitioned) PartitionFor(pos geom.Vec2) int {
	if pm.k == 1 {
		return 0
	}
	w := pm.bounds.Width()
	if w <= 0 {
		return 0
	}
	i := int((pos.X - pm.bounds.Min.X) / w * float64(pm.k))
	if i < 0 {
		i = 0
	}
	if i >= pm.k {
		i = pm.k - 1
	}
	return i
}

// routeBatch routes a whole batch by its pose centroid — group-path batches
// are one worker's sweep around one task location, so the centroid is the
// task's neighbourhood.
func (pm *Partitioned) routeBatch(photos []camera.Photo) int {
	if len(photos) == 0 {
		return 0
	}
	var cx, cy float64
	for _, p := range photos {
		cx += p.Pose.Pos.X
		cy += p.Pose.Pos.Y
	}
	n := float64(len(photos))
	return pm.PartitionFor(geom.V2(cx/n, cy/n))
}

// assignIDs gives every photo a model-unique ID in input order — the same
// sequence the monolithic model would assign — so photo IDs are stable
// across partition counts.
func (pm *Partitioned) assignIDs(photos []camera.Photo) {
	for i := range photos {
		if photos[i].ID == 0 {
			pm.nextPhotoID++
			photos[i].ID = pm.nextPhotoID
		} else if photos[i].ID > pm.nextPhotoID {
			pm.nextPhotoID = photos[i].ID
		}
	}
}

// foldViews appends each partition's new views to the merged view log, in
// partition-index order. The log is append-only — exactly the contract
// mapping.Incremental's cached per-view ray casts require — and the fold
// order is deterministic because it never depends on goroutine timing.
func (pm *Partitioned) foldViews() {
	for i, p := range pm.parts {
		nv := p.model.ViewsFrom(p.viewMark)
		pm.viewLog = append(pm.viewLog, nv...)
		for range nv {
			pm.viewSrc = append(pm.viewSrc, int32(i))
		}
		p.viewMark += len(nv)
	}
}

// FoldViews folds any views registered directly on a sub-model (the
// annotation pipeline writes through Part) into the merged view log.
func (pm *Partitioned) FoldViews() { pm.foldViews() }

// Views returns a copy of the merged view log.
func (pm *Partitioned) Views() []View { return append([]View(nil), pm.viewLog...) }

// ViewsFrom returns the merged view log from index from on, as a read-only
// capacity-clamped subslice (the log is append-only, so earlier returns stay
// valid).
func (pm *Partitioned) ViewsFrom(from int) []View {
	if from >= len(pm.viewLog) {
		return nil
	}
	return pm.viewLog[from:len(pm.viewLog):len(pm.viewLog)]
}

// RegisterBatch splits one photo batch across partitions by pose, registers
// each slice concurrently, and concatenates the per-partition results in
// partition order. With K = 1 the caller's rng drives the sub-model
// directly (bit-identical to Model.RegisterBatch); with K > 1 each
// participating partition gets a private rng seeded from the master rng in
// partition-index order.
func (pm *Partitioned) RegisterBatch(photos []camera.Photo, rng *rand.Rand) (BatchResult, error) {
	if rng == nil {
		return BatchResult{}, fmt.Errorf("sfm: rng must not be nil")
	}
	pm.assignIDs(photos)
	if pm.k == 1 {
		res, err := pm.parts[0].model.RegisterBatch(photos, rng)
		if err == nil {
			pm.foldViews()
		}
		return res, err
	}
	groups := make([][]camera.Photo, pm.k)
	for _, p := range photos {
		gi := pm.PartitionFor(p.Pose.Pos)
		groups[gi] = append(groups[gi], p)
	}
	queues := make([][][]camera.Photo, pm.k)
	for i, g := range groups {
		if len(g) > 0 {
			queues[i] = [][]camera.Photo{g}
		}
	}
	results, errs := pm.runQueuesSeeded(queues, pm.drawSeeds(queues, rng))
	var out BatchResult
	for i := 0; i < pm.k; i++ {
		if errs[i] != nil {
			return BatchResult{}, errs[i]
		}
		for _, r := range results[i] {
			out.Registered = append(out.Registered, r.Registered...)
			out.RejectedBlurry = append(out.RejectedBlurry, r.RejectedBlurry...)
			out.Unregistered = append(out.Unregistered, r.Unregistered...)
			out.NewPoints += r.NewPoints
		}
	}
	pm.foldViews()
	return out, nil
}

// RegisterBatches is the group-ingest path: each batch is routed whole (by
// pose centroid) to one partition, the per-partition queues run
// concurrently, and results come back in input-batch order. This is where
// partitioning pays: B batches from workers in distant wings fold in
// parallel instead of serialising through one model.
func (pm *Partitioned) RegisterBatches(batches [][]camera.Photo, rng *rand.Rand) ([]BatchResult, error) {
	if rng == nil {
		return nil, fmt.Errorf("sfm: rng must not be nil")
	}
	for _, b := range batches {
		pm.assignIDs(b)
	}
	out := make([]BatchResult, len(batches))
	if pm.k == 1 {
		for bi, b := range batches {
			res, err := pm.parts[0].model.RegisterBatch(b, rng)
			if err != nil {
				return nil, err
			}
			out[bi] = res
		}
		pm.foldViews()
		return out, nil
	}
	queues := make([][][]camera.Photo, pm.k)
	order := make([][]int, pm.k)
	for bi, b := range batches {
		pi := pm.routeBatch(b)
		queues[pi] = append(queues[pi], b)
		order[pi] = append(order[pi], bi)
	}
	results, errs := pm.runQueuesSeeded(queues, pm.drawSeeds(queues, rng))
	for i := 0; i < pm.k; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for qi, r := range results[i] {
			out[order[i][qi]] = r
		}
	}
	pm.foldViews()
	return out, nil
}

// runQueues executes per-partition batch queues concurrently. Sub-seeds are
// drawn from the master rng in partition-index order (only for partitions
// with work), so the draw sequence is independent of scheduling; each
// partition's queue runs sequentially on its own goroutine with its own rng.
// Used only on the K > 1 paths, which draw seeds before calling.
func (pm *Partitioned) runQueuesSeeded(queues [][][]camera.Photo, seeds []int64) ([][]BatchResult, []error) {
	results := make([][]BatchResult, pm.k)
	errs := make([]error, pm.k)
	var wg sync.WaitGroup
	for i := 0; i < pm.k; i++ {
		if len(queues[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := pm.parts[pi]
			sub := pm.trace.Sub(fmt.Sprintf("p%d.", pi))
			p.model.SetTrace(sub)
			defer p.model.SetTrace(nil)
			prng := rand.New(rand.NewSource(seeds[pi]))
			for _, b := range queues[pi] {
				res, err := p.model.RegisterBatch(b, prng)
				if err != nil {
					errs[pi] = err
					return
				}
				results[pi] = append(results[pi], res)
			}
		}(i)
	}
	wg.Wait()
	return results, errs
}

// drawSeeds draws one sub-seed per partition with work, in partition-index
// order, from the master rng — the only rng draws the K > 1 paths make on
// the caller's stream, so the stream advances deterministically.
func (pm *Partitioned) drawSeeds(queues [][][]camera.Photo, rng *rand.Rand) []int64 {
	seeds := make([]int64, pm.k)
	for i := 0; i < pm.k; i++ {
		if len(queues[i]) > 0 {
			seeds[i] = rng.Int63()
		}
	}
	return seeds
}

// FilterMerged runs the per-partition statistical outlier filters
// concurrently (full = reset caches and refilter from scratch, the
// cross-check path) and merges the filtered sub-clouds deterministically:
// partition-index order, sticky feature ownership for boundary dedup, and a
// frozen per-partition rigid translation estimated from shared boundary
// features. Returns the merged filtered cloud and the total removed count.
func (pm *Partitioned) FilterMerged(full bool) (*pointcloud.Cloud, int, error) {
	if pm.k == 1 {
		p := pm.parts[0]
		cloud, removed, err := pm.filterPart(p, full)
		if err != nil {
			return nil, 0, err
		}
		return cloud, removed, nil
	}
	errs := make([]error, pm.k)
	var wg sync.WaitGroup
	for i := 0; i < pm.k; i++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := pm.parts[pi]
			sub := pm.trace.Sub(fmt.Sprintf("p%d.", pi))
			p.sor.SetTrace(sub)
			defer p.sor.SetTrace(nil)
			p.filtered, p.removed, errs[pi] = pm.filterPart(p, full)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("sfm: partition %d filter: %w", i, err)
		}
	}
	return pm.merge()
}

// filterPart filters one partition's cloud through its incremental SOR
// cache. full resets the cache and the model's delta watermark first, so
// the pass recomputes everything (bit-identical to the incremental result —
// the cross-check the partition tests pin).
func (pm *Partitioned) filterPart(p *partition, full bool) (*pointcloud.Cloud, int, error) {
	if full {
		p.sor.Reset()
		p.model.ResetCloudMarks()
	}
	c, newPts, newOut := p.model.CloudIncremental()
	return p.sor.FilterAppend(c, p.model.NumPoints(), len(newPts), len(newOut))
}

// merge concatenates the filtered partition clouds in partition-index
// order, dropping non-owner copies of boundary features and applying each
// partition's frozen alignment translation. Duplicate (dropped) boundary
// points are the alignment evidence: the offset between a partition's local
// estimate and the owner's merged estimate of the same feature.
func (pm *Partitioned) merge() (*pointcloud.Cloud, int, error) {
	total := 0
	removed := 0
	for _, p := range pm.parts {
		total += p.filtered.Len()
		removed += p.removed
	}
	merged := make([]pointcloud.Point, 0, total)
	for i, p := range pm.parts {
		var sum geom.Vec3
		matches := 0
		fc := p.filtered
		for j := 0; j < fc.Len(); j++ {
			pt := fc.At(j)
			if pt.FeatureID != 0 {
				o, claimed := pm.owner[pt.FeatureID]
				if !claimed {
					pm.owner[pt.FeatureID] = i
				} else if o != i {
					// Boundary duplicate: alignment evidence, not a merged
					// point.
					if !p.aligned && matches < alignMaxMatches {
						if op, ok := pm.parts[o].model.PointByFeature(pt.FeatureID); ok {
							sum = sum.Add(op.Pos.Add(pm.parts[o].t).Sub(pt.Pos))
							matches++
						}
					}
					continue
				}
			}
			if p.aligned {
				pt.Pos = pt.Pos.Add(p.t)
			}
			merged = append(merged, pt)
		}
		if !p.aligned && matches >= alignMinMatches {
			p.t = sum.Scale(1 / float64(matches))
			p.aligned = true
		}
	}
	return pointcloud.Wrap(merged), removed, nil
}

// Aligned reports whether partition i's rigid translation has been frozen,
// and its value — observability for the merge stage.
func (pm *Partitioned) Aligned(i int) (geom.Vec3, bool) {
	return pm.parts[i].t, pm.parts[i].aligned
}
