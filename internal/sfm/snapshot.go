package sfm

import (
	"fmt"
	"slices"

	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
)

// FeatureEntry is one world-feature oracle record in a snapshot.
type FeatureEntry struct {
	ID         uint64
	Pos        geom.Vec3
	Artificial bool
}

// Snapshot is the serialisable state of a Model — what the paper's backend
// "stores in a database for further iterations". All fields are exported
// for encoding/gob.
type Snapshot struct {
	Cfg         Config
	Views       []View
	TrackIDs    []uint64
	TrackViews  [][]int
	Points      []pointcloud.Point
	Order       []uint64
	Outliers    []pointcloud.Point
	NextPhotoID int
	Features    []FeatureEntry
}

// Snapshot captures the model's complete state.
func (m *Model) Snapshot() Snapshot {
	s := Snapshot{
		Cfg:         m.cfg,
		Views:       append([]View(nil), m.views...),
		Order:       make([]uint64, len(m.pts)),
		Points:      append([]pointcloud.Point(nil), m.pts...),
		Outliers:    append([]pointcloud.Point(nil), m.outliers...),
		NextPhotoID: m.nextPhotoID,
	}
	for i, p := range m.pts {
		s.Order[i] = p.FeatureID
	}
	// Maps are serialised in sorted-ID order so the same model state always
	// encodes to the same bytes (snapshot files are diffable/hashable).
	trackIDs := make([]uint64, 0, len(m.tracks))
	for id := range m.tracks {
		trackIDs = append(trackIDs, id)
	}
	slices.Sort(trackIDs)
	for _, id := range trackIDs {
		s.TrackIDs = append(s.TrackIDs, id)
		s.TrackViews = append(s.TrackViews, append([]int(nil), m.tracks[id]...))
	}
	featIDs := make([]uint64, 0, len(m.featPos))
	for id := range m.featPos {
		featIDs = append(featIDs, id)
	}
	slices.Sort(featIDs)
	for _, id := range featIDs {
		info := m.featPos[id]
		s.Features = append(s.Features, FeatureEntry{ID: id, Pos: info.pos, Artificial: info.artificial})
	}
	return s
}

// FromSnapshot reconstructs a model from a snapshot.
func FromSnapshot(s Snapshot) (*Model, error) {
	if len(s.TrackIDs) != len(s.TrackViews) {
		return nil, fmt.Errorf("sfm: snapshot track arrays mismatch: %d vs %d",
			len(s.TrackIDs), len(s.TrackViews))
	}
	if len(s.Points) != len(s.Order) {
		return nil, fmt.Errorf("sfm: snapshot points/order mismatch: %d vs %d",
			len(s.Points), len(s.Order))
	}
	m := &Model{
		cfg:         s.Cfg.withDefaults(),
		featPos:     make(map[uint64]featureInfo, len(s.Features)),
		views:       append([]View(nil), s.Views...),
		tracks:      make(map[uint64][]int, len(s.TrackIDs)),
		pts:         append([]pointcloud.Point(nil), s.Points...),
		ptIdx:       make(map[uint64]int, len(s.Points)),
		touched:     make(map[uint64]struct{}),
		outliers:    append([]pointcloud.Point(nil), s.Outliers...),
		nextPhotoID: s.NextPhotoID,
	}
	for i, id := range s.TrackIDs {
		for _, v := range s.TrackViews[i] {
			if v < 0 || v >= len(m.views) {
				return nil, fmt.Errorf("sfm: snapshot track %d references view %d of %d", id, v, len(m.views))
			}
		}
		m.tracks[id] = append([]int(nil), s.TrackViews[i]...)
	}
	for i, id := range s.Order {
		m.ptIdx[id] = i
	}
	for _, f := range s.Features {
		m.featPos[f.ID] = featureInfo{pos: f.Pos, artificial: f.Artificial}
	}
	return m, nil
}
