package sfm

import (
	"fmt"
	"slices"

	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
)

// FeatureEntry is one world-feature oracle record in a snapshot.
type FeatureEntry struct {
	ID         uint64
	Pos        geom.Vec3
	Artificial bool
}

// Snapshot is the serialisable state of a Model — what the paper's backend
// "stores in a database for further iterations". All fields are exported
// for encoding/gob.
type Snapshot struct {
	Cfg         Config
	Views       []View
	TrackIDs    []uint64
	TrackViews  [][]int
	Points      []pointcloud.Point
	Order       []uint64
	Outliers    []pointcloud.Point
	NextPhotoID int
	Features    []FeatureEntry
}

// Snapshot captures the model's complete state.
func (m *Model) Snapshot() Snapshot {
	s := Snapshot{
		Cfg:         m.cfg,
		Views:       append([]View(nil), m.views...),
		Order:       make([]uint64, len(m.pts)),
		Points:      append([]pointcloud.Point(nil), m.pts...),
		Outliers:    append([]pointcloud.Point(nil), m.outliers...),
		NextPhotoID: m.nextPhotoID,
	}
	for i, p := range m.pts {
		s.Order[i] = p.FeatureID
	}
	// Maps are serialised in sorted-ID order so the same model state always
	// encodes to the same bytes (snapshot files are diffable/hashable).
	trackIDs := make([]uint64, 0, len(m.tracks))
	for id := range m.tracks {
		trackIDs = append(trackIDs, id)
	}
	slices.Sort(trackIDs)
	for _, id := range trackIDs {
		s.TrackIDs = append(s.TrackIDs, id)
		s.TrackViews = append(s.TrackViews, append([]int(nil), m.tracks[id]...))
	}
	featIDs := make([]uint64, 0, len(m.featPos))
	for id := range m.featPos {
		featIDs = append(featIDs, id)
	}
	slices.Sort(featIDs)
	for _, id := range featIDs {
		info := m.featPos[id]
		s.Features = append(s.Features, FeatureEntry{ID: id, Pos: info.pos, Artificial: info.artificial})
	}
	return s
}

// PartitionedSnapshot is the serialisable state of a Partitioned model: the
// per-partition sub-model snapshots plus the merge bookkeeping (sticky
// feature ownership, frozen alignment translations, and the view-log
// interleaving). Like Snapshot, maps serialise in sorted-ID order so equal
// states encode to equal bytes.
type PartitionedSnapshot struct {
	K           int
	Bounds      geom.AABB
	SOR         pointcloud.SOROptions
	Parts       []Snapshot
	OwnerIDs    []uint64
	OwnerPart   []int32
	T           []geom.Vec3
	Aligned     []bool
	ViewSrc     []int32
	NextPhotoID int
}

// Snapshot captures the partitioned model's complete state. Transient
// filter caches (per-partition SOR state, latest filtered clouds) are not
// serialised; the first FilterMerged(true) after restore rebuilds them.
func (pm *Partitioned) Snapshot() PartitionedSnapshot {
	s := PartitionedSnapshot{
		K:           pm.k,
		Bounds:      pm.bounds,
		SOR:         pm.sorOpt,
		T:           make([]geom.Vec3, pm.k),
		Aligned:     make([]bool, pm.k),
		ViewSrc:     append([]int32(nil), pm.viewSrc...),
		NextPhotoID: pm.nextPhotoID,
	}
	for i, p := range pm.parts {
		s.Parts = append(s.Parts, p.model.Snapshot())
		s.T[i] = p.t
		s.Aligned[i] = p.aligned
	}
	ids := make([]uint64, 0, len(pm.owner))
	for id := range pm.owner {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		s.OwnerIDs = append(s.OwnerIDs, id)
		s.OwnerPart = append(s.OwnerPart, int32(pm.owner[id]))
	}
	return s
}

// FromPartitionedSnapshot reconstructs a partitioned model from a snapshot.
func FromPartitionedSnapshot(s PartitionedSnapshot) (*Partitioned, error) {
	if s.K < 1 || len(s.Parts) != s.K || len(s.T) != s.K || len(s.Aligned) != s.K {
		return nil, fmt.Errorf("sfm: partitioned snapshot arity mismatch: k=%d parts=%d t=%d aligned=%d",
			s.K, len(s.Parts), len(s.T), len(s.Aligned))
	}
	if len(s.OwnerIDs) != len(s.OwnerPart) {
		return nil, fmt.Errorf("sfm: partitioned snapshot owner arrays mismatch: %d vs %d",
			len(s.OwnerIDs), len(s.OwnerPart))
	}
	pm := &Partitioned{
		sorOpt:      s.SOR,
		bounds:      s.Bounds,
		k:           s.K,
		owner:       make(map[uint64]int, len(s.OwnerIDs)),
		nextPhotoID: s.NextPhotoID,
	}
	totalViews := 0
	for i := 0; i < s.K; i++ {
		m, err := FromSnapshot(s.Parts[i])
		if err != nil {
			return nil, fmt.Errorf("sfm: partition %d: %w", i, err)
		}
		sor, err := pointcloud.NewIncrementalSOR(s.SOR)
		if err != nil {
			return nil, fmt.Errorf("sfm: partition %d SOR: %w", i, err)
		}
		pm.parts = append(pm.parts, &partition{
			model:   m,
			sor:     sor,
			t:       s.T[i],
			aligned: s.Aligned[i],
		})
		totalViews += m.NumViews()
	}
	pm.cfg = pm.parts[0].model.Config()
	if len(s.ViewSrc) != totalViews {
		return nil, fmt.Errorf("sfm: partitioned snapshot view log %d entries for %d views",
			len(s.ViewSrc), totalViews)
	}
	// Replay the view-log interleaving: each entry consumes the source
	// partition's next unfolded view.
	for _, src := range s.ViewSrc {
		if src < 0 || int(src) >= s.K {
			return nil, fmt.Errorf("sfm: partitioned snapshot view source %d of %d", src, s.K)
		}
		p := pm.parts[src]
		v := p.model.ViewsFrom(p.viewMark)
		if len(v) == 0 {
			return nil, fmt.Errorf("sfm: partitioned snapshot view log overruns partition %d", src)
		}
		pm.viewLog = append(pm.viewLog, v[0])
		pm.viewSrc = append(pm.viewSrc, src)
		p.viewMark++
	}
	for i, id := range s.OwnerIDs {
		o := int(s.OwnerPart[i])
		if o < 0 || o >= s.K {
			return nil, fmt.Errorf("sfm: partitioned snapshot owner %d of %d", o, s.K)
		}
		pm.owner[id] = o
	}
	return pm, nil
}

// FromSnapshot reconstructs a model from a snapshot.
func FromSnapshot(s Snapshot) (*Model, error) {
	if len(s.TrackIDs) != len(s.TrackViews) {
		return nil, fmt.Errorf("sfm: snapshot track arrays mismatch: %d vs %d",
			len(s.TrackIDs), len(s.TrackViews))
	}
	if len(s.Points) != len(s.Order) {
		return nil, fmt.Errorf("sfm: snapshot points/order mismatch: %d vs %d",
			len(s.Points), len(s.Order))
	}
	m := &Model{
		cfg:         s.Cfg.withDefaults(),
		featPos:     make(map[uint64]featureInfo, len(s.Features)),
		views:       append([]View(nil), s.Views...),
		tracks:      make(map[uint64][]int, len(s.TrackIDs)),
		pts:         append([]pointcloud.Point(nil), s.Points...),
		ptIdx:       make(map[uint64]int, len(s.Points)),
		touched:     make(map[uint64]struct{}),
		outliers:    append([]pointcloud.Point(nil), s.Outliers...),
		nextPhotoID: s.NextPhotoID,
	}
	for i, id := range s.TrackIDs {
		for _, v := range s.TrackViews[i] {
			if v < 0 || v >= len(m.views) {
				return nil, fmt.Errorf("sfm: snapshot track %d references view %d of %d", id, v, len(m.views))
			}
		}
		m.tracks[id] = append([]int(nil), s.TrackViews[i]...)
	}
	for i, id := range s.Order {
		m.ptIdx[id] = i
	}
	for _, f := range s.Features {
		m.featPos[f.ID] = featureInfo{pos: f.Pos, artificial: f.Artificial}
	}
	return m, nil
}
