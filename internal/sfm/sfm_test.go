package sfm

import (
	"math"
	"math/rand"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/venue"
)

// gridFeatures builds a dense wall of features along y=8 facing -y, ideal
// for multi-view capture from below.
func gridFeatures(n int) []venue.Feature {
	out := make([]venue.Feature, 0, n)
	for i := 0; i < n; i++ {
		x := 1 + 8*float64(i%40)/40
		z := 0.3 + 2.2*float64(i/40)/float64(n/40+1)
		out = append(out, venue.Feature{
			ID:        uint64(i + 1),
			Pos:       geom.V3(x, 8, z),
			Normal:    geom.V2(0, -1),
			SurfaceID: 1,
		})
	}
	return out
}

func testScene(t *testing.T) (*camera.World, []venue.Feature) {
	t.Helper()
	b := venue.NewBuilder("sfm-test", geom.Rect(geom.V2(0, 0), geom.V2(10, 10)), 3.0)
	b.Entrance(0, 0.1, 0.2)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	feats := gridFeatures(400)
	return camera.NewWorld(v, feats), feats
}

// capture takes a sharp photo facing the feature wall from (x, 2).
func capture(t *testing.T, w *camera.World, x float64, rng *rand.Rand) camera.Photo {
	t.Helper()
	p, err := w.Capture(camera.Pose{Pos: geom.V2(x, 2), Yaw: math.Pi / 2},
		camera.DefaultIntrinsics(), camera.CaptureOptions{DetectProb: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterBatchSeedsAndTriangulates(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(1))
	photos := []camera.Photo{
		capture(t, w, 4.0, rng),
		capture(t, w, 4.5, rng),
		capture(t, w, 5.0, rng),
	}
	res, err := m.RegisterBatch(photos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registered) != 3 {
		t.Fatalf("registered %d of 3: %+v", len(res.Registered), res)
	}
	if m.NumViews() != 3 {
		t.Errorf("views = %d", m.NumViews())
	}
	if res.NewPoints < 50 {
		t.Errorf("triangulated only %d points from 3 overlapping views", res.NewPoints)
	}
	if !res.RegisteredAll() {
		t.Error("RegisteredAll should be true")
	}
}

func TestTwoViewsAreNotEnough(t *testing.T) {
	// The paper's pipeline needs 3 observations per 3D point.
	w, feats := testScene(t)
	m := NewModel(Config{MatchDropProb: 1e-12, OutlierProb: 1e-12}, feats)
	rng := rand.New(rand.NewSource(2))
	res, err := m.RegisterBatch([]camera.Photo{
		capture(t, w, 4.0, rng),
		capture(t, w, 5.0, rng),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registered) != 2 {
		t.Fatalf("seed pair did not register: %+v", res)
	}
	if res.NewPoints != 0 {
		t.Errorf("two views triangulated %d points, want 0", res.NewPoints)
	}
	// A third view unlocks triangulation.
	res2, err := m.RegisterBatch([]camera.Photo{capture(t, w, 4.5, rng)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewPoints == 0 {
		t.Error("third view should triangulate points")
	}
}

func TestBaselineRequired(t *testing.T) {
	// Three photos from the same position (pure rotation) must not
	// triangulate anything even though every feature has 3 views.
	w, feats := testScene(t)
	m := NewModel(Config{PoseNoiseSigma: 1e-9, MatchDropProb: 1e-12, OutlierProb: 1e-12}, feats)
	rng := rand.New(rand.NewSource(3))
	pose := camera.Pose{Pos: geom.V2(5, 2), Yaw: math.Pi / 2}
	var photos []camera.Photo
	for i := 0; i < 3; i++ {
		p, err := w.Capture(pose, camera.DefaultIntrinsics(), camera.CaptureOptions{DetectProb: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		photos = append(photos, p)
	}
	res, err := m.RegisterBatch(photos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewPoints != 0 {
		t.Errorf("zero-baseline views triangulated %d points", res.NewPoints)
	}
}

func TestDisconnectedPhotoDoesNotRegister(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(4))
	// Seed a model looking at the wall.
	if _, err := m.RegisterBatch([]camera.Photo{
		capture(t, w, 4.0, rng), capture(t, w, 4.6, rng),
	}, rng); err != nil {
		t.Fatal(err)
	}
	// A photo facing the opposite (featureless) direction shares nothing.
	away, err := w.Capture(camera.Pose{Pos: geom.V2(5, 8.5), Yaw: -math.Pi / 2},
		camera.DefaultIntrinsics(), camera.CaptureOptions{DetectProb: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Note: facing -y from (5,8.5) sees features on wall y=8 edge-on → none.
	res, err := m.RegisterBatch([]camera.Photo{away}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unregistered) != 1 {
		t.Errorf("disconnected photo result: %+v", res)
	}
}

func TestBlurryPhotoRejected(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(5))
	p, err := w.Capture(camera.Pose{Pos: geom.V2(5, 2), Yaw: math.Pi / 2},
		camera.DefaultIntrinsics(), camera.CaptureOptions{DetectProb: 1, MotionBlurLen: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RegisterBatch([]camera.Photo{p}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RejectedBlurry) != 1 {
		t.Errorf("blurry photo not rejected: %+v (sharpness %v)", res, p.Sharpness)
	}
}

func TestFeaturelessSceneFailsToSeed(t *testing.T) {
	// Photos with almost no features (glass wall) cannot seed a model —
	// the situation that triggers annotation tasks.
	b := venue.NewBuilder("glass-test", geom.Rect(geom.V2(0, 0), geom.V2(10, 10)), 3.0)
	b.Entrance(0, 0.1, 0.2)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 features in the whole scene: far too few to seed.
	feats := gridFeatures(3)
	w := camera.NewWorld(v, feats)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(6))
	var photos []camera.Photo
	for _, x := range []float64{4, 4.5, 5} {
		p, err := w.Capture(camera.Pose{Pos: geom.V2(x, 2), Yaw: math.Pi / 2},
			camera.DefaultIntrinsics(), camera.CaptureOptions{DetectProb: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		photos = append(photos, p)
	}
	res, err := m.RegisterBatch(photos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registered) != 0 || len(res.Unregistered) != 3 {
		t.Errorf("featureless batch should not register: %+v", res)
	}
	if m.NumPoints() != 0 {
		t.Error("no points expected")
	}
}

func TestPointAccuracy(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(7))
	var photos []camera.Photo
	for _, x := range []float64{3.5, 4.2, 4.9, 5.6} {
		photos = append(photos, capture(t, w, x, rng))
	}
	if _, err := m.RegisterBatch(photos, rng); err != nil {
		t.Fatal(err)
	}
	truth := make(map[uint64]geom.Vec3)
	for _, f := range feats {
		truth[f.ID] = f.Pos
	}
	cloud := m.Cloud()
	if cloud.Len() == 0 {
		t.Fatal("empty cloud")
	}
	for _, p := range cloud.Points() {
		if p.FeatureID == 0 {
			continue // outlier
		}
		if d := p.Pos.Dist(truth[p.FeatureID]); d > 0.2 {
			t.Errorf("point %d off by %v m", p.FeatureID, d)
		}
		if p.Views < 3 {
			t.Errorf("point %d has %d views, want >= 3", p.FeatureID, p.Views)
		}
	}
}

func TestOutliersAppearAndAreMarked(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{OutlierProb: 0.9}, feats)
	rng := rand.New(rand.NewSource(8))
	var photos []camera.Photo
	for _, x := range []float64{3.5, 4.2, 4.9, 5.6, 6.3} {
		photos = append(photos, capture(t, w, x, rng))
	}
	if _, err := m.RegisterBatch(photos, rng); err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for _, p := range m.Cloud().Points() {
		if p.FeatureID == 0 {
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("expected spurious outlier points at OutlierProb 0.9")
	}
}

func TestPoseNoiseApplied(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{PoseNoiseSigma: 0.5}, feats)
	rng := rand.New(rand.NewSource(9))
	truePhotos := []camera.Photo{capture(t, w, 4.0, rng), capture(t, w, 4.8, rng)}
	if _, err := m.RegisterBatch(truePhotos, rng); err != nil {
		t.Fatal(err)
	}
	views := m.Views()
	if len(views) != 2 {
		t.Fatal("views missing")
	}
	moved := false
	for i, v := range views {
		if v.Pose.Pos.Dist(truePhotos[i].Pose.Pos) > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Error("estimated poses identical to truth despite noise")
	}
}

func TestRegisterBatchNilRNG(t *testing.T) {
	m := NewModel(Config{}, nil)
	if _, err := m.RegisterBatch(nil, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestIncrementalGrowthAcrossBatches(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{}, feats)
	rng := rand.New(rand.NewSource(10))
	if _, err := m.RegisterBatch([]camera.Photo{
		capture(t, w, 3.0, rng), capture(t, w, 3.5, rng), capture(t, w, 4.0, rng),
	}, rng); err != nil {
		t.Fatal(err)
	}
	before := m.NumPoints()
	// A later batch overlapping the first extends the model.
	res, err := m.RegisterBatch([]camera.Photo{
		capture(t, w, 4.5, rng), capture(t, w, 5.0, rng), capture(t, w, 5.5, rng),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registered) != 3 {
		t.Fatalf("second batch: %+v", res)
	}
	if m.NumPoints() <= before {
		t.Error("model did not grow")
	}
	// Photo IDs are unique across batches.
	seen := map[int]bool{}
	for _, v := range m.Views() {
		if seen[v.PhotoID] {
			t.Fatalf("duplicate photo ID %d", v.PhotoID)
		}
		seen[v.PhotoID] = true
	}
}

func TestConfigDefaults(t *testing.T) {
	m := NewModel(Config{}, nil)
	cfg := m.Config()
	if cfg.MinViewsForPoint != 3 {
		t.Errorf("MinViewsForPoint = %d, want 3 (paper)", cfg.MinViewsForPoint)
	}
	if cfg.MinBaseline <= 0 || cfg.SharpnessThreshold <= 0 {
		t.Error("defaults not applied")
	}
	// Explicit values survive.
	m2 := NewModel(Config{MinViewsForPoint: 5}, nil)
	if m2.Config().MinViewsForPoint != 5 {
		t.Error("explicit config overridden")
	}
}

func TestRemoveTwo(t *testing.T) {
	s := []int{10, 20, 30, 40, 50}
	got := removeTwo(s, 3, 1)
	want := []int{10, 30, 50}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPoseNoiseDeterministic(t *testing.T) {
	p := camera.Pose{Pos: geom.V2(3.25, 7.5), Yaw: 1.2}
	x1, y1 := poseNoise(p)
	x2, y2 := poseNoise(p)
	if x1 != x2 || y1 != y2 {
		t.Fatal("pose noise not deterministic for the same pose")
	}
	q := p
	q.Pos.X += 0.01
	x3, y3 := poseNoise(q)
	if x1 == x3 && y1 == y3 {
		t.Error("different poses should get different noise")
	}
	// The noise is standard-normal-ish: sample many poses and check the
	// empirical moments loosely.
	var sum, sumSq float64
	n := 0
	for i := 0; i < 500; i++ {
		r := camera.Pose{Pos: geom.V2(float64(i)*0.37, float64(i)*0.11), Yaw: float64(i) * 0.05}
		a, b := poseNoise(r)
		sum += a + b
		sumSq += a*a + b*b
		n += 2
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.15 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if variance < 0.6 || variance > 1.5 {
		t.Errorf("noise variance = %v, want ~1", variance)
	}
}

func TestRegisterSamePoseSameEstimate(t *testing.T) {
	// Re-uploading photos from identical poses must produce identical
	// estimated poses (no visibility inflation across repeats).
	w, feats := testScene(t)
	cfgBase := Config{}
	rngA := rand.New(rand.NewSource(31))
	photosA := []camera.Photo{capture(t, w, 4.0, rngA), capture(t, w, 4.6, rngA), capture(t, w, 5.2, rngA)}
	mA := NewModel(cfgBase, feats)
	if _, err := mA.RegisterBatch(photosA, rngA); err != nil {
		t.Fatal(err)
	}
	mB := NewModel(cfgBase, feats)
	rngB := rand.New(rand.NewSource(99)) // different rng state
	if _, err := mB.RegisterBatch(photosA, rngB); err != nil {
		t.Fatal(err)
	}
	va, vb := mA.Views(), mB.Views()
	if len(va) != len(vb) {
		t.Skip("match noise made registration counts differ; pose check not applicable")
	}
	for i := range va {
		if va[i].Pose.Pos != vb[i].Pose.Pos {
			t.Fatalf("view %d estimated pose differs across rng states: %v vs %v",
				i, va[i].Pose.Pos, vb[i].Pose.Pos)
		}
	}
}
