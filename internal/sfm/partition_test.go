package sfm

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
)

var testBounds = geom.AABB{Min: geom.V2(0, 0), Max: geom.V2(10, 10)}

// batchAt captures a registrable batch around x: enough co-observing photos
// to seed an empty sub-model and triangulate.
func batchAt(t *testing.T, w *camera.World, x float64, rng *rand.Rand) []camera.Photo {
	t.Helper()
	return []camera.Photo{
		capture(t, w, x-0.4, rng),
		capture(t, w, x, rng),
		capture(t, w, x+0.4, rng),
		capture(t, w, x+0.8, rng),
	}
}

func copyPhotos(photos []camera.Photo) []camera.Photo {
	return append([]camera.Photo(nil), photos...)
}

func modelGob(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func partitionedGob(t *testing.T, pm *Partitioned) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pm.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPartitionedK1BitIdentical pins the monolithic cross-check: a single
// partition fed the same batches with the same rng stream must produce a
// sub-model bit-identical to a plain Model, and FilterMerged must match the
// incremental SOR filter on that model's cloud.
func TestPartitionedK1BitIdentical(t *testing.T) {
	w, feats := testScene(t)
	mono := NewModel(Config{}, feats)
	pm, err := NewPartitioned(Config{}, feats, testBounds, 1, pointcloud.SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	sor, err := pointcloud.NewIncrementalSOR(pointcloud.SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	capRNG := rand.New(rand.NewSource(3))
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	for i, x := range []float64{4.0, 5.2, 6.4, 3.0} {
		photos := batchAt(t, w, x, capRNG)
		resA, err := mono.RegisterBatch(copyPhotos(photos), rngA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := pm.RegisterBatch(copyPhotos(photos), rngB)
		if err != nil {
			t.Fatal(err)
		}
		if len(resA.Registered) != len(resB.Registered) || resA.NewPoints != resB.NewPoints {
			t.Fatalf("batch %d: results diverge: %+v vs %+v", i, resA, resB)
		}
	}
	if !bytes.Equal(modelGob(t, mono), modelGob(t, pm.Part(0))) {
		t.Fatal("k=1 partitioned sub-model diverged from monolithic model")
	}
	monoCloud, monoNewA, monoNewB := mono.CloudIncremental()
	wantCloud, wantRemoved, err := sor.FilterAppend(monoCloud, mono.NumPoints(), len(monoNewA), len(monoNewB))
	if err != nil {
		t.Fatal(err)
	}
	gotCloud, gotRemoved, err := pm.FilterMerged(false)
	if err != nil {
		t.Fatal(err)
	}
	if gotRemoved != wantRemoved || gotCloud.Len() != wantCloud.Len() {
		t.Fatalf("k=1 FilterMerged: removed %d len %d, want removed %d len %d",
			gotRemoved, gotCloud.Len(), wantRemoved, wantCloud.Len())
	}
	for i := 0; i < gotCloud.Len(); i++ {
		if gotCloud.At(i) != wantCloud.At(i) {
			t.Fatalf("k=1 FilterMerged point %d differs", i)
		}
	}
}

// TestPartitionFor pins the strip routing: equal-width X strips, clamped at
// and beyond the bounds.
func TestPartitionFor(t *testing.T) {
	_, feats := testScene(t)
	pm, err := NewPartitioned(Config{}, feats, testBounds, 4, pointcloud.SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.2, 0}, {2.6, 1}, {5.0, 2}, {7.4, 2}, {7.6, 3}, {9.9, 3},
		{-3, 0}, {14, 3},
	}
	for _, c := range cases {
		if got := pm.PartitionFor(geom.V2(c.x, 5)); got != c.want {
			t.Errorf("PartitionFor(x=%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// growPartitioned seeds all four strips of a K=4 model with batches routed
// by pose, exercising the concurrent registration path.
func growPartitioned(t *testing.T, seed int64) (*Partitioned, *camera.World) {
	t.Helper()
	w, feats := testScene(t)
	pm, err := NewPartitioned(Config{}, feats, testBounds, 4, pointcloud.SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	capRNG := rand.New(rand.NewSource(seed))
	rng := rand.New(rand.NewSource(seed + 1))
	// One mixed batch splitting across partitions, then per-strip batches
	// (strip centers at 1.25, 3.75, 6.25, 8.75), then boundary batches that
	// straddle strips so shared features triangulate on both sides.
	var mixed []camera.Photo
	for _, x := range []float64{1.2, 3.8, 6.2, 8.6} {
		mixed = append(mixed, batchAt(t, w, x, capRNG)...)
	}
	if _, err := pm.RegisterBatch(mixed, rng); err != nil {
		t.Fatal(err)
	}
	var group [][]camera.Photo
	for _, x := range []float64{1.3, 3.7, 6.3, 8.5, 2.4, 2.6, 4.9, 5.1, 7.4, 7.6} {
		group = append(group, batchAt(t, w, x, capRNG))
	}
	if _, err := pm.RegisterBatches(group, rng); err != nil {
		t.Fatal(err)
	}
	return pm, w
}

// TestPartitionedConcurrentGrowth checks every strip's sub-model actually
// reconstructs, the merged view log covers all views, and merged boundary
// features are deduped to a single owner copy.
func TestPartitionedConcurrentGrowth(t *testing.T) {
	pm, _ := growPartitioned(t, 17)
	total := 0
	for i := 0; i < pm.K(); i++ {
		views, points := pm.PartStats(i)
		if views == 0 || points == 0 {
			t.Fatalf("partition %d did not reconstruct: views=%d points=%d", i, views, points)
		}
		total += views
	}
	if got := len(pm.Views()); got != total || got != pm.NumViews() {
		t.Fatalf("view log holds %d views, partitions hold %d (NumViews %d)", got, total, pm.NumViews())
	}
	cloud, _, err := pm.FilterMerged(false)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	for i := 0; i < cloud.Len(); i++ {
		if id := cloud.At(i).FeatureID; id != 0 {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("feature %d appears %d times in the merged cloud (boundary dedup failed)", id, n)
		}
	}
	// The straddling batches guarantee genuine overlap: at least one feature
	// must be triangulated by more than one partition yet merged once.
	overlap := 0
	for id := range seen {
		holders := 0
		for i := 0; i < pm.K(); i++ {
			if _, ok := pm.Part(i).PointByFeature(id); ok {
				holders++
			}
		}
		if holders > 1 {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("no boundary feature is shared between partitions; merge path untested")
	}
}

// TestPartitionedViewLogAppendOnly pins the mapping-layer contract: the
// merged view log only ever appends, so earlier prefixes never reorder.
func TestPartitionedViewLogAppendOnly(t *testing.T) {
	w, feats := testScene(t)
	pm, err := NewPartitioned(Config{}, feats, testBounds, 4, pointcloud.SOROptions{})
	if err != nil {
		t.Fatal(err)
	}
	capRNG := rand.New(rand.NewSource(5))
	rng := rand.New(rand.NewSource(6))
	var prev []View
	for _, x := range []float64{1.2, 6.3, 3.7, 8.6, 2.4, 7.5} {
		if _, err := pm.RegisterBatch(batchAt(t, w, x, capRNG), rng); err != nil {
			t.Fatal(err)
		}
		cur := pm.Views()
		if len(cur) < len(prev) {
			t.Fatalf("view log shrank: %d -> %d", len(prev), len(cur))
		}
		for i := range prev {
			if cur[i] != prev[i] {
				t.Fatalf("view log entry %d changed between batches", i)
			}
		}
		prev = cur
	}
}

// TestPartitionedDeterministic runs the same growth twice and requires
// byte-identical snapshots — goroutine scheduling must not leak into
// results.
func TestPartitionedDeterministic(t *testing.T) {
	a, _ := growPartitioned(t, 23)
	b, _ := growPartitioned(t, 23)
	if _, _, err := a.FilterMerged(false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.FilterMerged(false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(partitionedGob(t, a), partitionedGob(t, b)) {
		t.Fatal("identical partitioned runs produced different snapshots")
	}
}

// TestPartitionedIncrementalMatchesFullFilter cross-checks the two filter
// paths: per-partition incremental SOR caches must be bit-identical to
// resetting and refiltering from scratch.
func TestPartitionedIncrementalMatchesFullFilter(t *testing.T) {
	inc, _ := growPartitioned(t, 31)
	full, _ := growPartitioned(t, 31)
	ci, ri, err := inc.FilterMerged(false)
	if err != nil {
		t.Fatal(err)
	}
	cf, rf, err := full.FilterMerged(true)
	if err != nil {
		t.Fatal(err)
	}
	if ri != rf || ci.Len() != cf.Len() {
		t.Fatalf("incremental (removed %d, len %d) vs full (removed %d, len %d)",
			ri, ci.Len(), rf, cf.Len())
	}
	for i := 0; i < ci.Len(); i++ {
		if ci.At(i) != cf.At(i) {
			t.Fatalf("merged point %d differs between incremental and full filter", i)
		}
	}
}

// TestPartitionedSnapshotRoundTrip requires snapshot → restore → snapshot
// stability and that the restored model's merged output matches.
func TestPartitionedSnapshotRoundTrip(t *testing.T) {
	pm, _ := growPartitioned(t, 41)
	// First merge freezes the boundary alignment translations; merge again so
	// `want` reflects the settled (aligned) positions the restored model —
	// which starts out aligned — will also produce.
	if _, _, err := pm.FilterMerged(false); err != nil {
		t.Fatal(err)
	}
	want, _, err := pm.FilterMerged(false)
	if err != nil {
		t.Fatal(err)
	}
	first := partitionedGob(t, pm)
	var snap PartitionedSnapshot
	if err := gob.NewDecoder(bytes.NewReader(first)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := FromPartitionedSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, partitionedGob(t, restored)) {
		t.Fatal("snapshot changed across a round trip")
	}
	if restored.NumViews() != pm.NumViews() || len(restored.Views()) != len(pm.Views()) {
		t.Fatalf("restored views %d/%d, want %d/%d",
			restored.NumViews(), len(restored.Views()), pm.NumViews(), len(pm.Views()))
	}
	got, _, err := restored.FilterMerged(true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("restored merged cloud %d points, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("restored merged point %d differs", i)
		}
	}
}
