// Package sfm simulates the incremental Structure-from-Motion pipeline
// SnapTask's backend runs (the paper uses OpenMVG). The simulation
// reproduces the behavioural contract the system depends on rather than the
// numerics of bundle adjustment:
//
//   - photos register into a model only when they share enough matched
//     features with already-registered views (or, for a fresh model, when a
//     seed pair with enough mutual matches exists);
//   - a scene feature becomes a 3D point only when at least MinViewsForPoint
//     registered views observe it with a sufficient triangulation baseline —
//     the reason the paper sets COVERED_VIEW_TOLERANCE to 3;
//   - featureless surfaces yield no features, hence no points;
//   - reconstructed positions and camera poses carry noise, and occasional
//     spurious outlier points appear, exercising the statistical outlier
//     filter of Algorithm 1;
//   - blurry photos (low Laplacian variance) contribute nothing.
//
// The feature-position oracle (the world's true feature locations) plays
// the role that epipolar geometry plays for a real pipeline: it tells the
// simulator where a multiply-observed feature is.
package sfm

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
	"snaptask/internal/telemetry"
	"snaptask/internal/venue"
)

// Config tunes the simulated pipeline. Zero fields take defaults.
type Config struct {
	// MinViewsForPoint is the number of registered observations required
	// to triangulate a feature into a 3D point. The paper's pipeline
	// needs 3.
	MinViewsForPoint int
	// MinSharedForReg is the number of matched features with the current
	// model required to register a new photo.
	MinSharedForReg int
	// MinSeedMatches is the number of mutual matches required of the
	// initial photo pair when the model is empty.
	MinSeedMatches int
	// MinBaseline is the minimum spread (metres) among observing camera
	// positions for triangulation.
	MinBaseline float64
	// PointNoiseSigma is the std-dev of reconstructed point error. Zero
	// means the default; a negative value selects an explicit sigma of 0
	// (noiseless reconstruction), which the zero value cannot express.
	PointNoiseSigma float64
	// PoseNoiseSigma is the std-dev of estimated camera position error.
	// Zero means the default; a negative value selects an explicit sigma
	// of 0 (exact pose estimates).
	PoseNoiseSigma float64
	// MatchDropProb is the probability a true feature match is missed.
	// Zero means the default; a negative value selects an explicit
	// probability of 0 (no dropped matches).
	MatchDropProb float64
	// OutlierProb is the probability a registered photo spawns one
	// spurious far-off 3D point. Zero means the default; a negative value
	// selects an explicit probability of 0 (no spurious points).
	OutlierProb float64
	// SharpnessThreshold rejects photos whose Laplacian variance is
	// below it (blurred input).
	SharpnessThreshold float64
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		MinViewsForPoint:   3,
		MinSharedForReg:    12,
		MinSeedMatches:     20,
		MinBaseline:        0.2,
		PointNoiseSigma:    0.03,
		PoseNoiseSigma:     0.05,
		MatchDropProb:      0.05,
		OutlierProb:        0.03,
		SharpnessThreshold: 150,
	}
}

// withDefaults resolves zero fields to the paper's defaults. Negative
// noise/probability fields are the documented negative-means-zero sentinel:
// they stay negative in the resolved config (so the resolution is
// idempotent across snapshot round-trips) and are clamped to 0 at the point
// of use via nonneg.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MinViewsForPoint == 0 {
		c.MinViewsForPoint = d.MinViewsForPoint
	}
	if c.MinSharedForReg == 0 {
		c.MinSharedForReg = d.MinSharedForReg
	}
	if c.MinSeedMatches == 0 {
		c.MinSeedMatches = d.MinSeedMatches
	}
	if c.MinBaseline == 0 {
		c.MinBaseline = d.MinBaseline
	}
	if c.PointNoiseSigma == 0 {
		c.PointNoiseSigma = d.PointNoiseSigma
	}
	if c.PoseNoiseSigma == 0 {
		c.PoseNoiseSigma = d.PoseNoiseSigma
	}
	if c.MatchDropProb == 0 {
		c.MatchDropProb = d.MatchDropProb
	}
	if c.OutlierProb == 0 {
		c.OutlierProb = d.OutlierProb
	}
	if c.SharpnessThreshold == 0 {
		c.SharpnessThreshold = d.SharpnessThreshold
	}
	return c
}

// View is a photo registered into the model, with its estimated pose.
type View struct {
	PhotoID    int
	Pose       camera.Pose
	Intrinsics camera.Intrinsics
	NumObs     int
}

// Model is an incrementally growing SfM reconstruction: registered camera
// views plus triangulated 3D points. Not safe for concurrent use; the
// backend serialises access through its model-owner goroutine.
type Model struct {
	cfg Config

	featPos map[uint64]featureInfo
	views   []View
	// tracks maps feature ID → indices of views observing it.
	tracks map[uint64][]int
	// pts holds triangulated points in insertion order (the deterministic
	// cloud order); ptIdx maps a feature ID to its index in pts.
	pts   []pointcloud.Point
	ptIdx map[uint64]int
	// outliers are spurious points not tied to any feature.
	outliers []pointcloud.Point

	// touched collects the feature IDs whose track gained an observation
	// in the current batch — the only tracks whose triangulation state can
	// have changed, so triangulate visits just these instead of re-sorting
	// every track ID the model has ever seen.
	touched map[uint64]struct{}

	// cloudMarkPts/cloudMarkOut record how much of pts/outliers has been
	// reported through CloudIncremental.
	cloudMarkPts int
	cloudMarkOut int

	// trace is the stage-span sink of the batch currently being ingested;
	// nil (the default) disables span collection entirely.
	trace *telemetry.Trace

	nextPhotoID int
}

type featureInfo struct {
	pos        geom.Vec3
	artificial bool
}

// NewModel returns an empty model over the given world features. The
// feature set can grow later via AddWorldFeatures (annotation pipeline).
func NewModel(cfg Config, features []venue.Feature) *Model {
	cfg = cfg.withDefaults()
	m := &Model{
		cfg:     cfg,
		featPos: make(map[uint64]featureInfo, len(features)),
		tracks:  make(map[uint64][]int),
		ptIdx:   make(map[uint64]int),
		touched: make(map[uint64]struct{}),
	}
	m.AddWorldFeatures(features)
	return m
}

// Config returns the model's configuration (defaults resolved).
func (m *Model) Config() Config { return m.cfg }

// AddWorldFeatures registers additional true feature positions (artificial
// texture features injected by the annotation pipeline).
func (m *Model) AddWorldFeatures(features []venue.Feature) {
	for _, f := range features {
		m.featPos[f.ID] = featureInfo{pos: f.Pos, artificial: f.Artificial}
	}
}

// SetTrace sets the stage-span sink for subsequent RegisterBatch calls —
// the owner points it at the current batch's trace and clears it after.
// A nil trace (the default) makes every span a no-op.
func (m *Model) SetTrace(tr *telemetry.Trace) { m.trace = tr }

// NumViews returns the number of registered views.
func (m *Model) NumViews() int { return len(m.views) }

// NumPoints returns the number of triangulated points (excluding outliers).
func (m *Model) NumPoints() int { return len(m.pts) }

// Views returns a copy of the registered views.
func (m *Model) Views() []View { return append([]View(nil), m.views...) }

// ViewsFrom returns the registered views starting at index from as a
// read-only subslice of the model's backing array — no copy. The model only
// ever appends views, so previously returned subslices stay valid; callers
// must not mutate or append to the result (the slice is capacity-clamped,
// so an append allocates rather than scribbling on model state).
func (m *Model) ViewsFrom(from int) []View {
	if from >= len(m.views) {
		return nil
	}
	return m.views[from:len(m.views):len(m.views)]
}

// EachCloudPoint calls fn for every cloud point (triangulated points in
// insertion order, then outliers) without materialising the cloud copy
// Cloud() builds — the read path for owner-side callers that only need to
// iterate.
func (m *Model) EachCloudPoint(fn func(pointcloud.Point)) {
	for i := range m.pts {
		fn(m.pts[i])
	}
	for i := range m.outliers {
		fn(m.outliers[i])
	}
}

// PointByFeature returns the triangulated point for a feature ID, if the
// feature has been promoted to a 3D point.
func (m *Model) PointByFeature(id uint64) (pointcloud.Point, bool) {
	if i, ok := m.ptIdx[id]; ok {
		return m.pts[i], true
	}
	return pointcloud.Point{}, false
}

// ResetCloudMarks rewinds the CloudIncremental watermark so the next call
// reports every point as new — used when a downstream incremental filter
// cache has been reset and must be rebuilt from scratch.
func (m *Model) ResetCloudMarks() {
	m.cloudMarkPts = 0
	m.cloudMarkOut = 0
}

// Cloud returns the reconstructed point cloud, including any spurious
// outlier points (callers filter with pointcloud.StatisticalOutlierRemoval,
// as Algorithm 1 does). The returned cloud is an independent copy.
func (m *Model) Cloud() *pointcloud.Cloud {
	return pointcloud.Wrap(m.cloudSlice())
}

// CloudIncremental returns the cloud exactly as Cloud does, plus the points
// appended since the previous CloudIncremental call: newly triangulated
// points (which slot in before the outlier block) and new outlier points.
// Updated view counts on pre-existing points are reflected in the returned
// cloud, not in the deltas. The delta slices share the model's backing
// storage and must be treated as read-only.
func (m *Model) CloudIncremental() (c *pointcloud.Cloud, newPts, newOutliers []pointcloud.Point) {
	c = pointcloud.Wrap(m.cloudSlice())
	newPts = m.pts[m.cloudMarkPts:len(m.pts):len(m.pts)]
	newOutliers = m.outliers[m.cloudMarkOut:len(m.outliers):len(m.outliers)]
	m.cloudMarkPts = len(m.pts)
	m.cloudMarkOut = len(m.outliers)
	return c, newPts, newOutliers
}

// cloudSlice materialises the cloud order (triangulated points, then
// outliers) with a straight copy — no per-point map lookups.
func (m *Model) cloudSlice() []pointcloud.Point {
	buf := make([]pointcloud.Point, 0, len(m.pts)+len(m.outliers))
	buf = append(buf, m.pts...)
	buf = append(buf, m.outliers...)
	return buf
}

// BatchResult reports what happened to one uploaded batch.
type BatchResult struct {
	// Registered lists the photo IDs successfully added to the model.
	Registered []int
	// RejectedBlurry lists photos failing the sharpness check.
	RejectedBlurry []int
	// Unregistered lists sharp photos that did not match the model.
	Unregistered []int
	// NewPoints is the number of 3D points created by this batch.
	NewPoints int
}

// RegisteredAll reports whether every photo in the batch registered.
func (r BatchResult) RegisteredAll() bool {
	return len(r.RejectedBlurry) == 0 && len(r.Unregistered) == 0 && len(r.Registered) > 0
}

// RegisterBatch folds a batch of photos into the model: the incremental
// SfM step of Algorithm 1 line 1 ("build an SfM model M1 from P and M").
// Photos are assigned model-unique IDs (returned via the result and set on
// the photos' ID fields if zero). rng drives match and noise sampling.
func (m *Model) RegisterBatch(photos []camera.Photo, rng *rand.Rand) (BatchResult, error) {
	if rng == nil {
		return BatchResult{}, fmt.Errorf("sfm: rng must not be nil")
	}
	var res BatchResult
	pointsBefore := len(m.pts)

	sp := m.trace.Span("sfm.match")
	var pending []cand
	for _, p := range photos {
		if p.ID == 0 {
			m.nextPhotoID++
			p.ID = m.nextPhotoID
		} else if p.ID > m.nextPhotoID {
			m.nextPhotoID = p.ID
		}
		if p.Sharpness < m.cfg.SharpnessThreshold {
			res.RejectedBlurry = append(res.RejectedBlurry, p.ID)
			continue
		}
		var obs []uint64
		for _, o := range p.Obs {
			if _, known := m.featPos[o.FeatureID]; !known {
				continue
			}
			if rng.Float64() < nonneg(m.cfg.MatchDropProb) {
				continue
			}
			obs = append(obs, o.FeatureID)
		}
		pending = append(pending, cand{photo: p, obs: obs})
	}
	sp.End()

	// Seed: an empty model needs an initial pair with enough mutual
	// matches.
	if len(m.views) == 0 {
		sp = m.trace.Span("sfm.seed")
		i, j, ok := m.findSeedPair(pending)
		if !ok {
			sp.End()
			for _, c := range pending {
				res.Unregistered = append(res.Unregistered, c.photo.ID)
			}
			return res, nil
		}
		m.register(pending[i], rng)
		m.register(pending[j], rng)
		res.Registered = append(res.Registered, pending[i].photo.ID, pending[j].photo.ID)
		pending = removeTwo(pending, i, j)
		sp.End()
	}

	sp = m.trace.Span("sfm.register_sweep")
	m.registerSweep(pending, &res, rng)
	sp.End()

	sp = m.trace.Span("sfm.triangulate")
	m.triangulate(rng)
	sp.End()
	res.NewPoints = len(m.pts) - pointsBefore
	return res, nil
}

// registerSweep runs the incremental-registration fixpoint: keep sweeping
// the pending candidates until no photo registers. Instead of rescanning
// every candidate's matches against m.tracks on every sweep, it maintains
// per-candidate shared-match counts and an inverted feature→candidate
// index: when a registration activates a track (its view list flips from
// empty to non-empty), only the candidates observing that feature have
// their counts bumped. Candidates are always visited in batch order, so
// registration order — and with it view indices and rng draws — is
// identical to the full rescan.
func (m *Model) registerSweep(pending []cand, res *BatchResult, rng *rand.Rand) {
	if len(pending) == 0 {
		return
	}
	// Inverted index: feature ID → pending-candidate indices observing it,
	// one entry per observation occurrence (shared counts are
	// per-occurrence, matching a direct scan of c.obs).
	index := make(map[uint64][]int)
	for ci, c := range pending {
		for _, id := range c.obs {
			index[id] = append(index[id], ci)
		}
	}
	// Initial shared counts against the tracks registered so far (the
	// model plus any seed pair registered this batch).
	shared := make([]int, len(pending))
	for ci, c := range pending {
		for _, id := range c.obs {
			if len(m.tracks[id]) > 0 {
				shared[ci]++
			}
		}
	}
	done := make([]bool, len(pending))
	var activated []uint64 // reused scratch
	for {
		progress := false
		for ci, c := range pending {
			if done[ci] || shared[ci] < m.cfg.MinSharedForReg {
				continue
			}
			// Tracks this registration flips empty→non-empty, deduped
			// (an id observed twice still activates once).
			activated = activated[:0]
			for _, id := range c.obs {
				if len(m.tracks[id]) == 0 && !slices.Contains(activated, id) {
					activated = append(activated, id)
				}
			}
			m.register(c, rng)
			res.Registered = append(res.Registered, c.photo.ID)
			done[ci] = true
			progress = true
			for _, id := range activated {
				for _, cj := range index[id] {
					if !done[cj] {
						shared[cj]++
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	for ci, c := range pending {
		if !done[ci] {
			res.Unregistered = append(res.Unregistered, c.photo.ID)
		}
	}
}

// cand is a sharp photo awaiting registration, with the feature matches
// that survived match-drop noise.
type cand struct {
	photo camera.Photo
	obs   []uint64
}

// findSeedPair locates two pending photos sharing at least MinSeedMatches
// features: the lowest-index photo i that has a partner, paired with its
// lowest-index partner j — the same pair a pairwise O(n²·obs) scan picks.
// Shared counts come from an inverted feature→candidate index, so each i
// only touches the candidates that actually co-observe one of its
// features; large first batches no longer pay for every empty pairing.
func (m *Model) findSeedPair(pending []cand) (int, int, bool) {
	// One index entry per observation occurrence: a pair's shared count is
	// the number of j-observations whose feature i also observes.
	index := make(map[uint64][]int)
	for ci, c := range pending {
		for _, id := range c.obs {
			index[id] = append(index[id], ci)
		}
	}
	counts := make([]int, len(pending))
	stamp := make([]int, len(pending)) // epoch marks, to skip O(n) clears
	for i := 0; i < len(pending); i++ {
		epoch := i + 1
		seen := make(map[uint64]bool, len(pending[i].obs))
		for _, id := range pending[i].obs {
			if seen[id] {
				continue
			}
			seen[id] = true
			for _, j := range index[id] {
				if j <= i {
					continue
				}
				if stamp[j] != epoch {
					stamp[j] = epoch
					counts[j] = 0
				}
				counts[j]++
			}
		}
		for j := i + 1; j < len(pending); j++ {
			if stamp[j] == epoch && counts[j] >= m.cfg.MinSeedMatches {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// register adds a photo as a view with pose noise and updates tracks. The
// noise is a deterministic function of the true pose: re-registering a
// photo taken from the same spot yields the same estimate, as a real
// pipeline's systematic (scene-driven) pose error does — independent noise
// per upload would let repeated uploads inflate the visibility map.
func (m *Model) register(c cand, rng *rand.Rand) {
	viewIdx := len(m.views)
	pose := c.photo.Pose
	nx, ny := poseNoise(pose)
	sigma := nonneg(m.cfg.PoseNoiseSigma)
	pose.Pos = pose.Pos.Add(geom.V2(nx*sigma, ny*sigma))
	m.views = append(m.views, View{
		PhotoID:    c.photo.ID,
		Pose:       pose,
		Intrinsics: c.photo.Intrinsics,
		NumObs:     len(c.obs),
	})
	for _, id := range c.obs {
		m.tracks[id] = append(m.tracks[id], viewIdx)
		m.touched[id] = struct{}{}
	}
	// Occasional spurious structure from mismatches.
	if rng.Float64() < nonneg(m.cfg.OutlierProb) {
		dir := geom.UnitFromAngle(rng.Float64() * 2 * 3.141592653589793)
		dist := 12 + rng.Float64()*25
		m.outliers = append(m.outliers, pointcloud.Point{
			Pos:   pose.Pos.Add(dir.Scale(dist)).Lift(rng.Float64() * 3),
			Views: 2,
		})
	}
}

// triangulate promotes every sufficiently-observed feature to a 3D point.
// Only tracks touched by the current batch are visited — a track's view
// list, and with it its triangulation state, can only change when one of
// the batch's photos observed the feature. Candidates are visited in
// feature-ID order: the untouched tracks a full scan would interleave
// contribute no rng draws, so the noise sequence (and the point insertion
// order) is identical to sorting every track ID the model holds.
func (m *Model) triangulate(rng *rand.Rand) {
	if len(m.touched) == 0 {
		return
	}
	ids := make([]uint64, 0, len(m.touched))
	for id := range m.touched {
		ids = append(ids, id)
	}
	clear(m.touched)
	slices.Sort(ids)
	sigma := nonneg(m.cfg.PointNoiseSigma)
	for _, id := range ids {
		viewIdxs := m.tracks[id]
		if len(viewIdxs) < m.cfg.MinViewsForPoint {
			continue
		}
		if i, done := m.ptIdx[id]; done {
			// Already triangulated; update the view count.
			m.pts[i].Views = len(viewIdxs)
			continue
		}
		if !m.baselineOK(viewIdxs) {
			continue
		}
		info := m.featPos[id]
		noise := geom.V3(
			rng.NormFloat64()*sigma,
			rng.NormFloat64()*sigma,
			rng.NormFloat64()*sigma,
		)
		m.ptIdx[id] = len(m.pts)
		m.pts = append(m.pts, pointcloud.Point{
			Pos:        info.pos.Add(noise),
			FeatureID:  id,
			Views:      len(viewIdxs),
			Artificial: info.artificial,
		})
	}
}

// baselineOK reports whether the observing views spread far enough apart.
func (m *Model) baselineOK(viewIdxs []int) bool {
	for i := 0; i < len(viewIdxs); i++ {
		for j := i + 1; j < len(viewIdxs); j++ {
			a := m.views[viewIdxs[i]].Pose.Pos
			b := m.views[viewIdxs[j]].Pose.Pos
			if a.Dist(b) >= m.cfg.MinBaseline {
				return true
			}
		}
	}
	return false
}

// poseNoise derives two standard-normal values deterministically from a
// pose using a splitmix-style hash and the Box-Muller transform.
func poseNoise(p camera.Pose) (float64, float64) {
	h := math.Float64bits(p.Pos.X)*0x9E3779B97F4A7C15 ^
		math.Float64bits(p.Pos.Y)*0xC2B2AE3D27D4EB4F ^
		math.Float64bits(p.Yaw)*0x165667B19E3779F9
	next := func() float64 {
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
		return float64(h>>11) / float64(1<<53)
	}
	u1 := next()
	u2 := next()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}

// nonneg clamps a negative-means-zero sentinel config value at its point
// of use; the stored config keeps the sentinel so withDefaults stays
// idempotent across snapshot round-trips.
func nonneg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func removeTwo[T any](s []T, i, j int) []T {
	if i > j {
		i, j = j, i
	}
	out := make([]T, 0, len(s)-2)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:j]...)
	out = append(out, s[j+1:]...)
	return out
}
