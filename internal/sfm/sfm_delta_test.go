package sfm

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/pointcloud"
	"snaptask/internal/venue"
)

// referenceSweep is the pre-index registration fixpoint (rescan every
// pending candidate's matches against m.tracks on every pass), kept as the
// behavioural reference for registerSweep.
func referenceSweep(m *Model, pending []cand, res *BatchResult, rng *rand.Rand) {
	for {
		progress := false
		var still []cand
		for _, c := range pending {
			shared := 0
			for _, id := range c.obs {
				if len(m.tracks[id]) > 0 {
					shared++
				}
			}
			if shared >= m.cfg.MinSharedForReg {
				m.register(c, rng)
				res.Registered = append(res.Registered, c.photo.ID)
				progress = true
			} else {
				still = append(still, c)
			}
		}
		pending = still
		if !progress {
			break
		}
	}
	for _, c := range pending {
		res.Unregistered = append(res.Unregistered, c.photo.ID)
	}
}

// referenceSeedPair is the O(n²·obs) pairwise scan findSeedPair replaced.
func referenceSeedPair(m *Model, pending []cand) (int, int, bool) {
	for i := 0; i < len(pending); i++ {
		seen := make(map[uint64]bool, len(pending[i].obs))
		for _, id := range pending[i].obs {
			seen[id] = true
		}
		for j := i + 1; j < len(pending); j++ {
			shared := 0
			for _, id := range pending[j].obs {
				if seen[id] {
					shared++
				}
			}
			if shared >= m.cfg.MinSeedMatches {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// randCands fabricates pending candidates with random (occasionally
// duplicated) observations over feature IDs 1..nFeat.
func randCands(rng *rand.Rand, n, nFeat int) []cand {
	out := make([]cand, n)
	for i := range out {
		nObs := rng.Intn(14)
		obs := make([]uint64, 0, nObs+2)
		for o := 0; o < nObs; o++ {
			id := uint64(rng.Intn(nFeat) + 1)
			obs = append(obs, id)
			if rng.Float64() < 0.1 {
				obs = append(obs, id) // duplicate occurrence
			}
		}
		out[i] = cand{
			photo: camera.Photo{
				ID:   i + 1,
				Pose: camera.Pose{Pos: geom.V2(rng.Float64()*10, rng.Float64()*10), Yaw: rng.Float64()},
			},
			obs: obs,
		}
	}
	return out
}

func flatFeatures(n int) []venue.Feature {
	out := make([]venue.Feature, n)
	for i := range out {
		out[i] = venue.Feature{ID: uint64(i + 1), Pos: geom.V3(float64(i), 1, 1)}
	}
	return out
}

// TestRegisterSweepMatchesReference drives the indexed sweep and the rescan
// reference over identical randomized models and asserts identical
// registration order, unregistered sets, and resulting model state
// (including rng-driven pose noise and outlier draws).
func TestRegisterSweepMatchesReference(t *testing.T) {
	cfg := Config{MinSharedForReg: 3, MinSeedMatches: 4}
	for trial := 0; trial < 50; trial++ {
		seedRng := rand.New(rand.NewSource(int64(trial)))
		feats := flatFeatures(40)
		mNew := NewModel(cfg, feats)
		mRef := NewModel(cfg, feats)

		// Pre-activate a random set of tracks through a normal register
		// on both models so sweeps start from a non-empty state.
		base := cand{photo: camera.Photo{ID: 1000, Pose: camera.Pose{Pos: geom.V2(1, 1)}}}
		for f := 1; f <= 40; f++ {
			if seedRng.Float64() < 0.3 {
				base.obs = append(base.obs, uint64(f))
			}
		}
		rngA := rand.New(rand.NewSource(int64(trial) + 500))
		rngB := rand.New(rand.NewSource(int64(trial) + 500))
		mNew.register(base, rngA)
		mRef.register(base, rngB)

		pending := randCands(seedRng, 3+seedRng.Intn(25), 40)
		var resNew, resRef BatchResult
		mNew.registerSweep(slices.Clone(pending), &resNew, rngA)
		referenceSweep(mRef, slices.Clone(pending), &resRef, rngB)

		if !slices.Equal(resNew.Registered, resRef.Registered) {
			t.Fatalf("trial %d: registered %v, reference %v", trial, resNew.Registered, resRef.Registered)
		}
		if !slices.Equal(resNew.Unregistered, resRef.Unregistered) {
			t.Fatalf("trial %d: unregistered %v, reference %v", trial, resNew.Unregistered, resRef.Unregistered)
		}
		if !reflect.DeepEqual(mNew.Snapshot(), mRef.Snapshot()) {
			t.Fatalf("trial %d: model state diverged from reference", trial)
		}
	}
}

// TestFindSeedPairMatchesReference checks the inverted-index seed search
// returns exactly the pair the pairwise scan picks, across randomized
// candidate sets including no-pair cases.
func TestFindSeedPairMatchesReference(t *testing.T) {
	m := NewModel(Config{MinSeedMatches: 4}, nil)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		pending := randCands(rng, rng.Intn(20), 25)
		gi, gj, gok := m.findSeedPair(pending)
		wi, wj, wok := referenceSeedPair(m, pending)
		if gi != wi || gj != wj || gok != wok {
			t.Fatalf("trial %d: findSeedPair = (%d,%d,%v), reference (%d,%d,%v)",
				trial, gi, gj, gok, wi, wj, wok)
		}
	}
}

// TestNegativeSentinelsDisableNoise covers the withDefaults zero-value trap:
// negative MatchDropProb / OutlierProb / PoseNoiseSigma / PointNoiseSigma
// must select an explicit zero, yielding a fully noiseless run.
func TestNegativeSentinelsDisableNoise(t *testing.T) {
	w, feats := testScene(t)
	m := NewModel(Config{
		MatchDropProb:   -1,
		OutlierProb:     -1,
		PoseNoiseSigma:  -1,
		PointNoiseSigma: -1,
	}, feats)
	rng := rand.New(rand.NewSource(3))
	photos := []camera.Photo{
		capture(t, w, 4.0, rng),
		capture(t, w, 4.5, rng),
		capture(t, w, 5.0, rng),
	}
	res, err := m.RegisterBatch(photos, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RegisteredAll() {
		t.Fatalf("batch did not fully register: %+v", res)
	}
	for i, v := range m.Views() {
		if v.Pose != photos[i].Pose {
			t.Errorf("view %d pose %+v != exact photo pose %+v", i, v.Pose, photos[i].Pose)
		}
		if v.NumObs != len(photos[i].Obs) {
			t.Errorf("view %d: %d obs survived of %d — matches dropped despite MatchDropProb<0",
				i, v.NumObs, len(photos[i].Obs))
		}
	}
	c := m.Cloud()
	if c.Len() != m.NumPoints() {
		t.Errorf("%d outlier points produced despite OutlierProb<0", c.Len()-m.NumPoints())
	}
	byID := make(map[uint64]geom.Vec3, len(feats))
	for _, f := range feats {
		byID[f.ID] = f.Pos
	}
	c.Each(func(p pointcloud.Point) {
		if p.Pos != byID[p.FeatureID] {
			t.Errorf("point %d at %+v, want exact %+v", p.FeatureID, p.Pos, byID[p.FeatureID])
		}
	})
}

// TestWithDefaultsSentinels pins the sentinel semantics: zero resolves to
// the paper default, negative stays negative in the stored config (so
// resolution is idempotent across snapshot round-trips) and clamps to zero
// at use time.
func TestWithDefaultsSentinels(t *testing.T) {
	d := DefaultConfig()
	z := Config{}.withDefaults()
	if z.MatchDropProb != d.MatchDropProb || z.OutlierProb != d.OutlierProb ||
		z.PoseNoiseSigma != d.PoseNoiseSigma || z.PointNoiseSigma != d.PointNoiseSigma {
		t.Errorf("zero config did not resolve to defaults: %+v", z)
	}
	neg := Config{MatchDropProb: -1, OutlierProb: -0.5, PoseNoiseSigma: -2, PointNoiseSigma: -3}.withDefaults()
	if neg.MatchDropProb >= 0 || neg.OutlierProb >= 0 || neg.PoseNoiseSigma >= 0 || neg.PointNoiseSigma >= 0 {
		t.Errorf("negative sentinels were overwritten: %+v", neg)
	}
	if again := neg.withDefaults(); again != neg {
		t.Errorf("withDefaults not idempotent: %+v != %+v", again, neg)
	}
	m := NewModel(Config{OutlierProb: -1}, nil)
	m2, err := FromSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m2.cfg != m.cfg {
		t.Errorf("snapshot round-trip changed config: %+v != %+v", m2.cfg, m.cfg)
	}
	for _, v := range []float64{-1, 0, 0.25} {
		want := v
		if v < 0 {
			want = 0
		}
		if nonneg(v) != want {
			t.Errorf("nonneg(%v) = %v", v, nonneg(v))
		}
	}
}

// TestCloudIncrementalDeltas grows a model over several batches and checks
// the deltas reported by CloudIncremental reassemble exactly the cloud's two
// segments, with nothing reported twice.
func TestCloudIncrementalDeltas(t *testing.T) {
	w, _ := testScene(t)
	m := NewModel(Config{}, nil)
	// Use the world's real features so captures observe them.
	m.AddWorldFeatures(w.Features())
	rng := rand.New(rand.NewSource(5))
	var gotPts []uint64
	var nPts, nOut int
	for batch := 0; batch < 4; batch++ {
		var photos []camera.Photo
		for k := 0; k < 3; k++ {
			photos = append(photos, capture(t, w, 3+float64(batch)*0.9+float64(k)*0.45, rng))
		}
		if _, err := m.RegisterBatch(photos, rng); err != nil {
			t.Fatal(err)
		}
		c, newPts, newOutliers := m.CloudIncremental()
		if c.Len() != len(m.pts)+len(m.outliers) {
			t.Fatalf("batch %d: cloud len %d != %d pts + %d outliers", batch, c.Len(), len(m.pts), len(m.outliers))
		}
		if !slices.Equal(c.Points(), m.Cloud().Points()) {
			t.Fatalf("batch %d: CloudIncremental cloud differs from Cloud()", batch)
		}
		for _, p := range newPts {
			gotPts = append(gotPts, p.FeatureID)
		}
		nOut += len(newOutliers)
		nPts += len(newPts)
		// A second call with no model change must report empty deltas.
		_, again, againOut := m.CloudIncremental()
		if len(again) != 0 || len(againOut) != 0 {
			t.Fatalf("batch %d: unchanged model reported deltas (%d,%d)", batch, len(again), len(againOut))
		}
	}
	if nPts != m.NumPoints() || nOut != len(m.outliers) {
		t.Fatalf("deltas covered (%d,%d) of (%d,%d) points", nPts, nOut, m.NumPoints(), len(m.outliers))
	}
	var wantPts []uint64
	for _, p := range m.pts {
		wantPts = append(wantPts, p.FeatureID)
	}
	if !slices.Equal(gotPts, wantPts) {
		t.Fatal("concatenated point deltas differ from the cloud's point segment")
	}
}
