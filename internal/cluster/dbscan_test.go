package cluster

import (
	"math"
	"math/rand"
	"testing"

	"snaptask/internal/geom"
)

// blob generates n points normally distributed around c.
func blob(rng *rand.Rand, c geom.Vec2, sigma float64, n int) []geom.Vec2 {
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = c.Add(geom.V2(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
	}
	return out
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(blob(rng, geom.V2(0, 0), 0.1, 40), blob(rng, geom.V2(5, 5), 0.1, 40)...)
	res, err := DBSCAN(pts, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	// All points in the first blob share one label, second blob another.
	l0 := res.Labels[0]
	for i := 0; i < 40; i++ {
		if res.Labels[i] != l0 {
			t.Fatalf("blob 1 split: point %d label %d != %d", i, res.Labels[i], l0)
		}
	}
	l1 := res.Labels[40]
	if l1 == l0 {
		t.Fatal("blobs merged")
	}
	for i := 40; i < 80; i++ {
		if res.Labels[i] != l1 {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blob(rng, geom.V2(0, 0), 0.05, 30)
	pts = append(pts, geom.V2(50, 50), geom.V2(-40, 10)) // lone outliers
	res, err := DBSCAN(pts, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[30] != Noise || res.Labels[31] != Noise {
		t.Errorf("outliers labelled %d, %d, want Noise", res.Labels[30], res.Labels[31])
	}
	if got := res.Cluster(0); len(got) != 30 {
		t.Errorf("cluster 0 size = %d, want 30", len(got))
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	res, err := DBSCAN(pts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("clusters = %d, want 0", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Errorf("point %d label %d, want Noise", i, l)
		}
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A dense core with one border point within eps of a core point but
	// itself not core.
	pts := []geom.Vec2{
		{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0, Y: 0.1}, {X: 0.1, Y: 0.1}, // core
		{X: 0.5, Y: 0}, // border: 1 core neighbour only
	}
	res, err := DBSCAN(pts, 0.45, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[4] != 0 {
		t.Errorf("border point label = %d, want 0", res.Labels[4])
	}
}

func TestDBSCANEmptyAndValidation(t *testing.T) {
	if _, err := DBSCAN(nil, 0, 4); err == nil {
		t.Error("eps=0 should error")
	}
	if _, err := DBSCAN(nil, 1, 0); err == nil {
		t.Error("minPts=0 should error")
	}
	res, err := DBSCAN(nil, 1, 3)
	if err != nil || res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Errorf("empty input: %+v, %v", res, err)
	}
}

func TestDBSCANCentroids(t *testing.T) {
	pts := []geom.Vec2{
		{X: 0, Y: 0}, {X: 0.2, Y: 0}, {X: 0.1, Y: 0.2},
		{X: 10, Y: 10}, {X: 10.2, Y: 10}, {X: 10.1, Y: 10.2},
	}
	res, err := DBSCAN(pts, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	cs := res.Centroids(pts)
	if cs[0].Dist(geom.V2(0.1, 0.0667)) > 0.01 {
		t.Errorf("centroid 0 = %v", cs[0])
	}
	if cs[1].Dist(geom.V2(10.1, 10.0667)) > 0.01 {
		t.Errorf("centroid 1 = %v", cs[1])
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := append(blob(rng, geom.V2(0, 0), 0.3, 50), blob(rng, geom.V2(3, 0), 0.3, 50)...)
	a, _ := DBSCAN(pts, 0.5, 4)
	b, _ := DBSCAN(pts, 0.5, 4)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("DBSCAN not deterministic")
		}
	}
}

func TestKMeansFourCorners(t *testing.T) {
	// The annotation use case: noisy marks around 4 corners of a quad.
	rng := rand.New(rand.NewSource(4))
	corners := []geom.Vec2{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 3}, {X: 0, Y: 3}}
	var pts []geom.Vec2
	for _, c := range corners {
		pts = append(pts, blob(rng, c, 0.1, 15)...)
	}
	res, err := KMeans(pts, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 4 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Each true corner must be close to exactly one centre.
	for _, c := range corners {
		best := math.Inf(1)
		for _, ctr := range res.Centers {
			if d := c.Dist(ctr); d < best {
				best = d
			}
		}
		if best > 0.2 {
			t.Errorf("no centre near corner %v (best %v)", c, best)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := []geom.Vec2{{X: 1}, {X: 2}}
	rng := rand.New(rand.NewSource(5))
	if _, err := KMeans(pts, 0, rng); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, 3, rng); err == nil {
		t.Error("k > n should error")
	}
}

func TestKMeansExactK(t *testing.T) {
	pts := []geom.Vec2{{X: 1}, {X: 5}, {X: 9}}
	rng := rand.New(rand.NewSource(6))
	res, err := KMeans(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With k == n every point is its own centre.
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("labels used = %d, want 3", len(seen))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := []geom.Vec2{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	rng := rand.New(rand.NewSource(7))
	res, err := KMeans(pts, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centers {
		if !c.ApproxEq(geom.V2(1, 1)) {
			t.Errorf("centre %v, want (1,1)", c)
		}
	}
}

func TestKMeansLabelsMatchNearestCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var pts []geom.Vec2
	for i := 0; i < 60; i++ {
		pts = append(pts, geom.V2(rng.Float64()*10, rng.Float64()*10))
	}
	res, err := KMeans(pts, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range res.Centers {
			if d := p.Dist2(ctr); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Labels[i] != best {
			t.Fatalf("point %d labelled %d but nearest centre is %d", i, res.Labels[i], best)
		}
	}
}
