// Package cluster implements the two clustering algorithms SnapTask's
// annotation pipeline (Algorithm 5) relies on: DBSCAN (Ester et al. [21])
// for grouping worker annotations into distinct marked objects, and
// k-means (Hartigan & Wong [22]) for splitting an object's annotation
// points into its four corners.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"snaptask/internal/geom"
)

// Noise is the label DBSCAN assigns to points that belong to no cluster.
const Noise = -1

// DBSCANResult holds per-point cluster labels (0..NumClusters-1, or Noise).
type DBSCANResult struct {
	Labels      []int
	NumClusters int
}

// Cluster returns the indices of the points labelled k.
func (r DBSCANResult) Cluster(k int) []int {
	var out []int
	for i, l := range r.Labels {
		if l == k {
			out = append(out, i)
		}
	}
	return out
}

// Centroids returns the mean position of each cluster, indexed by label.
func (r DBSCANResult) Centroids(pts []geom.Vec2) []geom.Vec2 {
	sums := make([]geom.Vec2, r.NumClusters)
	counts := make([]int, r.NumClusters)
	for i, l := range r.Labels {
		if l == Noise {
			continue
		}
		sums[l] = sums[l].Add(pts[i])
		counts[l]++
	}
	out := make([]geom.Vec2, r.NumClusters)
	for k := range sums {
		if counts[k] > 0 {
			out[k] = sums[k].Scale(1 / float64(counts[k]))
		}
	}
	return out
}

// DBSCAN clusters the 2D points with radius eps and density threshold
// minPts (the minimum number of points, including the point itself, within
// eps for a point to be a core point). Cluster labels are assigned in
// deterministic scan order.
func DBSCAN(pts []geom.Vec2, eps float64, minPts int) (DBSCANResult, error) {
	if eps <= 0 {
		return DBSCANResult{}, fmt.Errorf("cluster: eps %v must be positive", eps)
	}
	if minPts < 1 {
		return DBSCANResult{}, fmt.Errorf("cluster: minPts %d must be >= 1", minPts)
	}
	const unvisited = -2
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = unvisited
	}
	idx := newGrid2(pts, eps)
	next := 0
	for i := range pts {
		if labels[i] != unvisited {
			continue
		}
		neighbors := idx.rangeQuery(pts, i, eps)
		if len(neighbors) < minPts {
			labels[i] = Noise
			continue
		}
		c := next
		next++
		labels[i] = c
		// Expand the cluster over density-reachable points.
		queue := append([]int(nil), neighbors...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = c // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = c
			jn := idx.rangeQuery(pts, j, eps)
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
	}
	return DBSCANResult{Labels: labels, NumClusters: next}, nil
}

// grid2 is a uniform spatial hash over 2D points for eps-range queries.
type grid2 struct {
	cell  float64
	cells map[[2]int][]int
}

func newGrid2(pts []geom.Vec2, cell float64) *grid2 {
	g := &grid2{cell: cell, cells: make(map[[2]int][]int)}
	for i, p := range pts {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *grid2) key(p geom.Vec2) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// rangeQuery returns the indices of all points within eps of point i,
// including i itself, sorted ascending for determinism.
func (g *grid2) rangeQuery(pts []geom.Vec2, i int, eps float64) []int {
	center := pts[i]
	ck := g.key(center)
	var out []int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, j := range g.cells[[2]int{ck[0] + dx, ck[1] + dy}] {
				if center.Dist(pts[j]) <= eps {
					out = append(out, j)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// KMeansResult holds the output of KMeans.
type KMeansResult struct {
	// Centers are the final cluster centroids.
	Centers []geom.Vec2
	// Labels assigns each input point to a centre index.
	Labels []int
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
}

// KMeans clusters the points into k groups using Lloyd's algorithm with
// k-means++ seeding. rng drives the seeding; passing the same rng and input
// yields identical results. It returns an error when k exceeds the number
// of points or is non-positive.
func KMeans(pts []geom.Vec2, k int, rng *rand.Rand) (KMeansResult, error) {
	if k <= 0 {
		return KMeansResult{}, fmt.Errorf("cluster: k %d must be positive", k)
	}
	if len(pts) < k {
		return KMeansResult{}, fmt.Errorf("cluster: k=%d exceeds %d points", k, len(pts))
	}
	centers := seedPlusPlus(pts, k, rng)
	labels := make([]int, len(pts))
	const maxIter = 100
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist2(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([]geom.Vec2, k)
		counts := make([]int, k)
		for i, p := range pts {
			sums[labels[i]] = sums[labels[i]].Add(p)
			counts[labels[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c].Scale(1 / float64(counts[c]))
			}
		}
	}
	return KMeansResult{Centers: centers, Labels: labels, Iterations: iter}, nil
}

// seedPlusPlus picks k initial centres with k-means++ (each next centre is
// sampled proportionally to its squared distance from the nearest chosen
// centre).
func seedPlusPlus(pts []geom.Vec2, k int, rng *rand.Rand) []geom.Vec2 {
	centers := make([]geom.Vec2, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		var sum float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2(c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum <= 0 {
			// All remaining points coincide with a centre; duplicate one.
			centers = append(centers, pts[rng.Intn(len(pts))])
			continue
		}
		r := rng.Float64() * sum
		acc := 0.0
		pick := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centers = append(centers, pts[pick])
	}
	return centers
}
