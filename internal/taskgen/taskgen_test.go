package taskgen

import (
	"testing"

	"snaptask/internal/geom"
	"snaptask/internal/grid"
)

// maps20 builds a 20x20-cell (3x3 m at 0.15 res) pair of maps... too small
// for MIN_AREA 2.25m²=100 cells, so tests use a 1 m resolution variant
// where cells are big and counts small.
func maps(t *testing.T, res float64, w, h int) (*grid.Map, *grid.Map) {
	t.Helper()
	ob, err := grid.New(geom.V2(0, 0), res, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return ob, grid.NewLike(ob)
}

// coverAll sets visibility of every cell to n.
func coverAll(m *grid.Map, n int) {
	m.Each(func(c grid.Cell, _ int) { m.Set(c, n) })
}

func TestFindUnvisitedWholeVenueUncovered(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10) // MinAreaSize 2.25 m² → 3 cells at 1 m²/cell
	regions := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 1)
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(regions))
	}
	if regions[0].Size() < 3 {
		t.Errorf("region size = %d, want >= MinArea cells", regions[0].Size())
	}
}

func TestFindUnvisitedFullyCovered(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	coverAll(vis, 3) // exactly at tolerance → covered
	if got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 5); len(got) != 0 {
		t.Errorf("covered venue produced %d regions", len(got))
	}
}

func TestFindUnvisitedBelowToleranceCountsAsUnvisited(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	coverAll(vis, 2) // below COVERED_VIEW_TOLERANCE=3
	if got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 1); len(got) != 1 {
		t.Errorf("2-view cells should be unvisited, got %d regions", len(got))
	}
}

func TestFindUnvisitedSkipsSmallAreas(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	coverAll(vis, 5)
	// A 2-cell hole: below the 3-cell minimum (2.25 m² at 1 m²/cell → 2.25 → 2 cells via int()).
	vis.Set(grid.Cell{I: 4, J: 4}, 0)
	vis.Set(grid.Cell{I: 5, J: 4}, 0)
	got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{MinAreaSize: 3.0}, 5)
	if len(got) != 0 {
		t.Errorf("small hole got a task: %d regions", len(got))
	}
	// Growing the hole past the minimum creates a region.
	vis.Set(grid.Cell{I: 6, J: 4}, 0)
	vis.Set(grid.Cell{I: 4, J: 5}, 0)
	got = FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{MinAreaSize: 3.0}, 5)
	if len(got) != 1 {
		t.Errorf("4-cell hole should yield a region, got %d", len(got))
	}
}

func TestFindUnvisitedBlockedByObstacles(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	coverAll(vis, 5)
	// Seal off the right half with an obstacle wall; leave it uncovered.
	for j := 0; j < 10; j++ {
		ob.Set(grid.Cell{I: 5, J: j}, 9)
	}
	for j := 0; j < 10; j++ {
		for i := 6; i < 10; i++ {
			vis.Set(grid.Cell{I: i, J: j}, 0)
		}
	}
	// The flood fill cannot reach the sealed area (the paper's search
	// walks through traversable space only).
	got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 5)
	if len(got) != 0 {
		t.Errorf("sealed area reachable: %d regions", len(got))
	}
}

func TestFindUnvisitedStartInvalid(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	ob.Set(grid.Cell{I: 0, J: 0}, 5)
	if got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 1); got != nil {
		t.Error("start on obstacle should find nothing")
	}
	if got := FindUnvisited(ob, vis, geom.V2(-5, -5), Config{}, 1); got != nil {
		t.Error("start out of bounds should find nothing")
	}
}

func TestFindUnvisitedMaxAreas(t *testing.T) {
	ob, vis := maps(t, 1, 30, 10)
	coverAll(vis, 5)
	// Three separate uncovered pockets.
	for _, base := range []int{2, 12, 22} {
		for di := 0; di < 3; di++ {
			for dj := 0; dj < 3; dj++ {
				vis.Set(grid.Cell{I: base + di, J: 4 + dj}, 0)
			}
		}
	}
	if got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 2); len(got) != 2 {
		t.Errorf("maxAreas=2 returned %d regions", len(got))
	}
	if got := FindUnvisited(ob, vis, geom.V2(0.5, 0.5), Config{}, 10); len(got) != 3 {
		t.Errorf("all pockets: got %d regions, want 3", len(got))
	}
}

func TestStepIssuesPhotoTaskOnGrowth(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	out, err := g.Step(StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: true, CoverageIncreased: true,
		BatchSharpness: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 1 || out.Tasks[0].Kind != KindPhoto {
		t.Fatalf("out = %+v", out)
	}
	if out.Tasks[0].ID != 1 {
		t.Errorf("task ID = %d, want 1", out.Tasks[0].ID)
	}
	// Task location must be inside the map and on a free cell.
	loc := out.Tasks[0].Location
	if !ob.InBounds(ob.CellOf(loc)) || ob.At(ob.CellOf(loc)) != 0 {
		t.Errorf("task location %v invalid", loc)
	}
}

func TestStepVenueCovered(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	coverAll(vis, 4)
	g := NewGenerator(Config{})
	out, err := g.Step(StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: true, CoverageIncreased: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.VenueCovered || len(out.Tasks) != 0 {
		t.Errorf("out = %+v, want VenueCovered", out)
	}
}

func TestStepBlurryRetrySameLocation(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	loc := geom.V2(5.5, 5.5)
	out, err := g.Step(StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: false, CoverageIncreased: false,
		BatchSharpness: 10, // blurry
		TaskLocation:   loc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 1 || out.Tasks[0].Kind != KindPhoto || out.Tasks[0].Location != loc {
		t.Fatalf("blurry retry wrong: %+v", out)
	}
	if out.EscalatedToAnnotation {
		t.Error("blurry batch must not escalate")
	}
}

func TestStepEscalatesToAnnotationAfterTT(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{}) // TT = 2
	loc := geom.V2(5.5, 5.5)
	in := StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: true, CoverageIncreased: false, // sharp but unproductive
		BatchSharpness: 900,
		TaskLocation:   loc,
	}
	// Attempts 1 and 2: photo retries.
	for i := 1; i <= 2; i++ {
		out, err := g.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Tasks) != 1 || out.Tasks[0].Kind != KindPhoto {
			t.Fatalf("attempt %d: %+v", i, out)
		}
		if out.Tasks[0].Retry != i {
			t.Errorf("attempt %d: retry = %d", i, out.Tasks[0].Retry)
		}
	}
	// Attempt 3 (> TT): annotation task at the same location.
	out, err := g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 1 || out.Tasks[0].Kind != KindAnnotation || !out.EscalatedToAnnotation {
		t.Fatalf("expected annotation escalation: %+v", out)
	}
	if out.Tasks[0].Location != loc {
		t.Error("annotation task must stay at the failing location")
	}
	// Counter reset: the next unproductive attempt is a photo retry again.
	out, err = g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks[0].Kind != KindPhoto {
		t.Error("retry counter did not reset after escalation")
	}
}

func TestStepBootstrap(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	out, err := g.Step(StepInput{
		Obstacles: ob, Visibility: vis,
		Start:     geom.V2(0.5, 0.5),
		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) != 1 {
		t.Fatalf("bootstrap should issue the first task: %+v", out)
	}
}

func TestStepValidation(t *testing.T) {
	g := NewGenerator(Config{})
	if _, err := g.Step(StepInput{}); err == nil {
		t.Error("nil maps should error")
	}
	ob, _ := maps(t, 1, 10, 10)
	other, _ := grid.New(geom.V2(0, 0), 1, 5, 5)
	if _, err := g.Step(StepInput{Obstacles: ob, Visibility: other}); err == nil {
		t.Error("mismatched layouts should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	g := NewGenerator(Config{})
	cfg := g.Config()
	if cfg.CoveredViewTolerance != 3 || cfg.MinAreaSize != 2.25 || cfg.MaxTasks != 1 || cfg.TT != 2 {
		t.Errorf("paper defaults not applied: %+v", cfg)
	}
	if KindPhoto.String() != "photo" || KindAnnotation.String() != "annotation" || Kind(0).String() != "unknown" {
		t.Error("Kind.String wrong")
	}
}

func TestTaskIDsMonotonic(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	var last int
	for i := 0; i < 4; i++ {
		out, err := g.Step(StepInput{
			Obstacles: ob, Visibility: vis,
			Start:           geom.V2(0.5, 0.5),
			BatchRegistered: true, CoverageIncreased: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range out.Tasks {
			if task.ID <= last {
				t.Fatalf("task ID %d not increasing past %d", task.ID, last)
			}
			last = task.ID
		}
	}
}

func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	loc := geom.V2(5.5, 5.5)
	in := StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: true, CoverageIncreased: false,
		BatchSharpness: 900,
		TaskLocation:   loc,
	}
	// Accumulate retry state (one attempt) and an escalation.
	for i := 0; i < 3; i++ {
		if _, err := g.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	snap := g.Snapshot()
	g2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Both generators must behave identically from here.
	out1, err := g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := g2.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1.Tasks) != len(out2.Tasks) {
		t.Fatalf("restored generator diverged: %d vs %d tasks", len(out1.Tasks), len(out2.Tasks))
	}
	for i := range out1.Tasks {
		if out1.Tasks[i].Kind != out2.Tasks[i].Kind || out1.Tasks[i].ID != out2.Tasks[i].ID {
			t.Errorf("task %d differs: %+v vs %+v", i, out1.Tasks[i], out2.Tasks[i])
		}
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	bad := Snapshot{TriedKeys: []grid.Cell{{I: 1, J: 1}}}
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("mismatched snapshot arrays accepted")
	}
}

func TestStepGiveUpRedirects(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{GiveUpAfter: 1})
	loc := geom.V2(5.5, 5.5)
	in := StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: true, CoverageIncreased: false,
		BatchSharpness: 900,
		TaskLocation:   loc,
		TaskSeed:       loc,
	}
	// Two retries then one escalation exhausts the bucket (GiveUpAfter 1).
	sawAnnotation := false
	for i := 0; i < 3; i++ {
		out, err := g.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range out.Tasks {
			if task.Kind == KindAnnotation {
				sawAnnotation = true
			}
		}
	}
	if !sawAnnotation {
		t.Fatal("no escalation within TT attempts")
	}
	// The next failure at the same seed must redirect to the area search
	// (which finds other unvisited areas — everything is uncovered here,
	// but tasks at the exhausted bucket itself must not repeat).
	out, err := g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range out.Tasks {
		if retryKey(task.AimPoint()) == retryKey(loc) {
			t.Errorf("task re-issued at the exhausted bucket: %+v", task)
		}
	}
}

func TestAnnotationFailedFastGiveUp(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	loc := geom.V2(5.5, 5.5)
	out, err := g.Step(StepInput{
		Obstacles: ob, Visibility: vis,
		Start:            geom.V2(0.5, 0.5),
		BatchRegistered:  false,
		BatchSharpness:   900,
		TaskLocation:     loc,
		TaskSeed:         loc,
		AnnotationFailed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The failed-annotation location is skipped immediately.
	for _, task := range out.Tasks {
		if retryKey(task.AimPoint()) == retryKey(loc) {
			t.Errorf("task at the failed-annotation bucket: %+v", task)
		}
	}
}

func TestTaskAimPoint(t *testing.T) {
	withSeed := Task{Location: geom.V2(1, 1), Seed: geom.V2(2, 2)}
	if withSeed.AimPoint() != geom.V2(2, 2) {
		t.Error("seed not preferred")
	}
	noSeed := Task{Location: geom.V2(1, 1)}
	if noSeed.AimPoint() != geom.V2(1, 1) {
		t.Error("location fallback broken")
	}
}

func TestBlurRetryRecordsExclusion(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	loc := geom.V2(5.5, 5.5)
	in := StepInput{
		Obstacles: ob, Visibility: vis,
		Start:           geom.V2(0.5, 0.5),
		BatchRegistered: false, CoverageIncreased: false,
		BatchSharpness: 10, // blurry
		TaskLocation:   loc,
		WorkerID:       "w1",
	}
	out, err := g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.RetriedForBlur {
		t.Fatalf("expected blur retry: %+v", out)
	}
	if got := out.Tasks[0].Exclude; len(got) != 1 || got[0] != "w1" {
		t.Fatalf("exclusion set = %v, want [w1]", got)
	}

	// A second careless worker at the same spot joins the set; the first
	// is not duplicated.
	in.WorkerID = "w2"
	out, err = g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Tasks[0].Exclude; len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("exclusion set = %v, want [w1 w2]", got)
	}
	in.WorkerID = "w1"
	out, err = g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Tasks[0].Exclude; len(got) != 2 {
		t.Fatalf("repeat offender duplicated: %v", got)
	}

	// Anonymous uploads record nothing.
	in.WorkerID = ""
	out, err = g.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Tasks[0].Exclude; len(got) != 2 {
		t.Fatalf("anonymous blur changed the set: %v", got)
	}
}

func TestSnapshotCarriesBlurExclusions(t *testing.T) {
	ob, vis := maps(t, 1, 10, 10)
	g := NewGenerator(Config{})
	loc := geom.V2(5.5, 5.5)
	in := StepInput{
		Obstacles: ob, Visibility: vis,
		Start:          geom.V2(0.5, 0.5),
		BatchSharpness: 10,
		TaskLocation:   loc,
		WorkerID:       "w7",
	}
	if _, err := g.Step(in); err != nil {
		t.Fatal(err)
	}
	g2, err := FromSnapshot(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// The restored generator still knows who blurred here: the next blur
	// retry re-issues the task with the old worker excluded.
	in.WorkerID = ""
	out, err := g2.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Tasks[0].Exclude; len(got) != 1 || got[0] != "w7" {
		t.Fatalf("restored exclusion set = %v, want [w7]", got)
	}
}

func TestFromSnapshotBlurMismatch(t *testing.T) {
	bad := Snapshot{BlurKeys: []grid.Cell{{I: 1, J: 1}}}
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("mismatched blur arrays accepted")
	}
}
