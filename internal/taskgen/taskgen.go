// Package taskgen implements SnapTask's task-generation algorithms — the
// paper's primary contribution. Algorithm 4 (findUnvisited) flood-fills the
// current model coverage from the initial position looking for free areas
// seen by fewer than COVERED_VIEW_TOLERANCE cameras and at least
// MIN_AREA_SIZE large; Algorithm 1 wraps it in the full decision workflow:
// grow → search for unvisited areas → issue photo tasks, or, when a
// location stays unproductive despite sharp photos, escalate to a
// featureless-surface annotation task.
package taskgen

import (
	"fmt"
	"math"

	"snaptask/internal/geom"
	"snaptask/internal/grid"
)

// Kind distinguishes the two task types SnapTask issues.
type Kind int

const (
	// KindPhoto asks a participant to perform a 360° photo sweep at the
	// task location.
	KindPhoto Kind = iota + 1
	// KindAnnotation asks for photos of a featureless surface plus
	// online corner annotations.
	KindAnnotation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPhoto:
		return "photo"
	case KindAnnotation:
		return "annotation"
	default:
		return "unknown"
	}
}

// Task is one crowdsourcing assignment.
type Task struct {
	ID       int
	Kind     Kind
	Location geom.Vec2
	// Seed is the discovery-frontier point of the unvisited area that
	// produced the task — the cell where the coverage search first
	// crossed into the area. For areas beyond a glass wall the seed sits
	// right at the gap, which is where an annotation task must aim.
	Seed geom.Vec2
	// Retry counts how many times this location has been re-issued.
	Retry int
	// Exclude lists workers that must not receive this task: participants
	// whose blurry uploads caused it to be re-issued. Algorithm 1 retries
	// blurry spots "with other workers" — this carries the "other".
	Exclude []string
}

// AimPoint returns where a worker should direct the capture: the discovery
// seed when known, the task location otherwise.
func (t Task) AimPoint() geom.Vec2 {
	if t.Seed != (geom.Vec2{}) {
		return t.Seed
	}
	return t.Location
}

// Config tunes the generator. Zero fields take the paper's values.
type Config struct {
	// CoveredViewTolerance: a cell is unvisited when fewer camera views
	// cover it (3 in the paper — the SfM pipeline needs 3 observations).
	CoveredViewTolerance int
	// MinAreaSize is the smallest unvisited area worth a task, in m²
	// (2.25 m² in the paper).
	MinAreaSize float64
	// MaxTasks bounds how many tasks one iteration may generate
	// (MAX_TASKS; the paper issues 1 at a time per participant).
	MaxTasks int
	// TT is how many unproductive high-quality attempts a location gets
	// before escalating to an annotation task (2 in the paper).
	TT int
	// LowQualitySharpness is the Laplacian-variance threshold below
	// which a batch counts as blurry input.
	LowQualitySharpness float64
	// GiveUpAfter is how many annotation escalations a location bucket
	// gets before the generator stops issuing tasks there. The paper's
	// pipeline similarly leaves spots it cannot improve uncovered
	// ("other white areas show spots that were too small"). Defaults
	// to 2.
	GiveUpAfter int
}

func (c Config) withDefaults() Config {
	if c.CoveredViewTolerance == 0 {
		c.CoveredViewTolerance = 3
	}
	if c.MinAreaSize == 0 {
		c.MinAreaSize = 2.25
	}
	if c.MaxTasks == 0 {
		c.MaxTasks = 1
	}
	if c.TT == 0 {
		c.TT = 2
	}
	if c.LowQualitySharpness == 0 {
		c.LowQualitySharpness = 150
	}
	if c.GiveUpAfter == 0 {
		c.GiveUpAfter = 2
	}
	return c
}

// retryQuantum is the size (metres) of the location buckets used for retry
// counting: successive tasks within the same bucket count toward the same
// TT escalation even when map noise shifts the exact task cell slightly.
// The bucket is about one annotation window wide, so one escalate-and-seal
// cycle handles one bucket.
const retryQuantum = 3.0

// Generator is the Algorithm 1 state machine. It tracks per-location retry
// counts across iterations. Not safe for concurrent use.
type Generator struct {
	cfg    Config
	nextID int
	tried  map[grid.Cell]int
	// escalations counts annotation escalations per retry bucket; buckets
	// at GiveUpAfter are exhausted and no longer receive tasks.
	escalations map[grid.Cell]int
	// blurred lists, per retry bucket, the workers whose uploads there
	// were rejected as blurry; re-issued tasks exclude them.
	blurred map[grid.Cell][]string
}

// retryKey buckets a location for retry counting.
func retryKey(loc geom.Vec2) grid.Cell {
	return grid.Cell{
		I: int(math.Floor(loc.X / retryQuantum)),
		J: int(math.Floor(loc.Y / retryQuantum)),
	}
}

// NewGenerator returns a generator with the given configuration.
func NewGenerator(cfg Config) *Generator {
	return &Generator{
		cfg:         cfg.withDefaults(),
		tried:       make(map[grid.Cell]int),
		escalations: make(map[grid.Cell]int),
		blurred:     make(map[grid.Cell][]string),
	}
}

// Config returns the generator's resolved configuration.
func (g *Generator) Config() Config { return g.cfg }

// StepInput carries the state Algorithm 1 inspects after a batch of photos
// has been processed.
type StepInput struct {
	// Obstacles and Visibility are the current maps (Algorithms 2–3
	// output) sharing one layout.
	Obstacles, Visibility *grid.Map
	// Start is the flood-fill origin — the venue's initial position.
	Start geom.Vec2
	// BatchRegistered reports whether the uploaded photos entered the
	// model (Algorithm 1's "P ∈ Mf").
	BatchRegistered bool
	// CoverageIncreased reports whether model coverage grew.
	CoverageIncreased bool
	// BatchSharpness is the batch's photo quality (variance of the
	// Laplacian; the minimum over the batch is the conservative choice).
	BatchSharpness float64
	// TaskLocation is the location L of the task that produced the batch.
	TaskLocation geom.Vec2
	// Bootstrap marks the initial model-building call, which has no
	// preceding task; failure handling is skipped.
	Bootstrap bool
	// AnnotationFailed marks that an annotation task at TaskLocation
	// identified nothing to annotate; the generator gives up on the spot
	// immediately instead of burning further attempts.
	AnnotationFailed bool
	// TaskSeed is the discovery seed of the task that produced this
	// batch, propagated to retries and escalations.
	TaskSeed geom.Vec2
	// WorkerID identifies the participant whose upload is being judged.
	// On a blur rejection the worker joins the location's exclusion set so
	// the re-issued task goes to other participants. Empty (anonymous
	// uploads) records nothing.
	WorkerID string
}

// StepOutput is Algorithm 1's result.
type StepOutput struct {
	// Tasks to issue next (empty when the venue is covered or a retry is
	// pending elsewhere).
	Tasks []Task
	// VenueCovered is true when no unvisited areas remain.
	VenueCovered bool
	// EscalatedToAnnotation is true when a photo task was converted into
	// an annotation task at the same location.
	EscalatedToAnnotation bool
	// RetriedForBlur is true when the batch was rejected as blurry input
	// and the same task was re-issued without counting a TT strike.
	RetriedForBlur bool
}

// Step runs one iteration of Algorithm 1 (lines 6–20: the task-decision
// part; callers run reconstruction and map building first).
func (g *Generator) Step(in StepInput) (StepOutput, error) {
	if in.Obstacles == nil || in.Visibility == nil {
		return StepOutput{}, fmt.Errorf("taskgen: nil maps")
	}
	if !in.Obstacles.SameLayout(in.Visibility) {
		return StepOutput{}, fmt.Errorf("taskgen: obstacle and visibility layouts differ")
	}

	if in.BatchRegistered && in.CoverageIncreased || in.Bootstrap {
		return g.searchTasks(in), nil
	}

	// Failure handling (lines 13–19). Retry accounting keys on the
	// discovery seed so photo retries and annotation escalations at the
	// same gap share one counter.
	keyLoc := in.TaskSeed
	if keyLoc == (geom.Vec2{}) {
		keyLoc = in.TaskLocation
	}
	key := retryKey(keyLoc)
	if in.AnnotationFailed {
		g.escalations[key] = g.cfg.GiveUpAfter
	}
	if g.escalations[key] >= g.cfg.GiveUpAfter {
		// This spot has already burned its annotation attempts; move on
		// to the next unvisited area instead of cycling forever.
		return g.searchTasks(in), nil
	}
	if in.BatchSharpness <= g.cfg.LowQualitySharpness {
		// Blurry input: re-issue the same task to other participants
		// without counting an attempt. The offending worker joins the
		// bucket's exclusion set so "other" is enforceable downstream.
		if in.WorkerID != "" && !contains(g.blurred[key], in.WorkerID) {
			g.blurred[key] = append(g.blurred[key], in.WorkerID)
		}
		g.nextID++
		return StepOutput{
			Tasks: []Task{{
				ID:       g.nextID,
				Kind:     KindPhoto,
				Location: in.TaskLocation,
				Seed:     in.TaskSeed,
				Retry:    g.tried[key],
				Exclude:  append([]string(nil), g.blurred[key]...),
			}},
			RetriedForBlur: true,
		}, nil
	}
	g.tried[key]++
	if g.tried[key] > g.cfg.TT {
		// Sharp photos kept failing here: a featureless surface.
		g.tried[key] = 0
		g.escalations[key]++
		g.nextID++
		return StepOutput{
			Tasks: []Task{{
				ID:       g.nextID,
				Kind:     KindAnnotation,
				Location: in.TaskLocation,
				Seed:     in.TaskSeed,
			}},
			EscalatedToAnnotation: true,
		}, nil
	}
	g.nextID++
	return StepOutput{Tasks: []Task{{
		ID:       g.nextID,
		Kind:     KindPhoto,
		Location: in.TaskLocation,
		Seed:     in.TaskSeed,
		Retry:    g.tried[key],
	}}}, nil
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// searchTasks runs the unvisited-area search and converts surviving areas
// into photo tasks, skipping locations the generator has given up on. An
// empty result declares the venue covered.
func (g *Generator) searchTasks(in StepInput) StepOutput {
	// Search for a few extra areas so exhausted buckets can be skipped
	// without re-running the flood fill.
	areas := FindUnvisited(in.Obstacles, in.Visibility, in.Start, g.cfg, g.cfg.MaxTasks+8)
	var out StepOutput
	for _, a := range areas {
		loc := in.Obstacles.CenterOf(a.Center())
		seed := loc
		if len(a.Cells) > 0 {
			seed = in.Obstacles.CenterOf(a.Cells[0])
		}
		if g.escalations[retryKey(seed)] >= g.cfg.GiveUpAfter {
			continue // the system has given up on this gap
		}
		g.nextID++
		out.Tasks = append(out.Tasks, Task{
			ID:       g.nextID,
			Kind:     KindPhoto,
			Location: loc,
			Seed:     seed,
		})
		if len(out.Tasks) >= g.cfg.MaxTasks {
			break
		}
	}
	if len(out.Tasks) == 0 {
		out.VenueCovered = true
	}
	return out
}

// FindUnvisited implements Algorithm 4: starting from the initial position
// it breadth-first searches the non-obstacle space for cells covered by
// fewer than CoveredViewTolerance camera views, expands each seed into a
// region, and returns up to maxAreas regions of at least MinAreaSize.
func FindUnvisited(obstacles, visibility *grid.Map, start geom.Vec2, cfg Config, maxAreas int) []grid.Region {
	cfg = cfg.withDefaults()
	if maxAreas <= 0 {
		maxAreas = cfg.MaxTasks
	}
	minCells := int(cfg.MinAreaSize / obstacles.CellArea())
	if minCells < 1 {
		minCells = 1
	}

	free := func(c grid.Cell) bool { return obstacles.At(c) == 0 }
	unvisited := func(c grid.Cell) bool {
		return free(c) && visibility.At(c) < cfg.CoveredViewTolerance
	}

	var found []grid.Region
	expanded := make(map[grid.Cell]bool)
	startCell := obstacles.CellOf(start)
	if !obstacles.InBounds(startCell) || !free(startCell) {
		return nil
	}

	// BFS over traversable space; each unvisited cell encountered seeds a
	// region expansion (the expand() of Algorithm 4). The limit is a few
	// times MIN_AREA_SIZE: enough to absorb a typical pocket in one
	// region while keeping the centre near the discovery frontier.
	limit := 4 * minCells
	seen := map[grid.Cell]bool{startCell: true}
	queue := []grid.Cell{startCell}
	for len(queue) > 0 && len(found) < maxAreas {
		q := queue[0]
		queue = queue[1:]
		if unvisited(q) && !expanded[q] {
			region := grid.ExpandRegion(obstacles, q, limit, unvisited, expanded)
			if region.Size() >= minCells {
				found = append(found, region)
			}
		}
		for _, n := range q.Neighbors4() {
			if !obstacles.InBounds(n) || seen[n] || !free(n) {
				continue
			}
			seen[n] = true
			queue = append(queue, n)
		}
	}
	return found
}

// Snapshot is the Generator's serialisable state.
type Snapshot struct {
	Cfg             Config
	NextID          int
	TriedKeys       []grid.Cell
	TriedCounts     []int
	EscalationKeys  []grid.Cell
	EscalationCount []int
	BlurKeys        []grid.Cell
	BlurWorkers     [][]string
}

// Snapshot captures the generator state for persistence.
func (g *Generator) Snapshot() Snapshot {
	s := Snapshot{Cfg: g.cfg, NextID: g.nextID}
	for k, v := range g.tried {
		s.TriedKeys = append(s.TriedKeys, k)
		s.TriedCounts = append(s.TriedCounts, v)
	}
	for k, v := range g.escalations {
		s.EscalationKeys = append(s.EscalationKeys, k)
		s.EscalationCount = append(s.EscalationCount, v)
	}
	for k, v := range g.blurred {
		s.BlurKeys = append(s.BlurKeys, k)
		s.BlurWorkers = append(s.BlurWorkers, append([]string(nil), v...))
	}
	return s
}

// FromSnapshot reconstructs a generator from a snapshot.
func FromSnapshot(s Snapshot) (*Generator, error) {
	if len(s.TriedKeys) != len(s.TriedCounts) || len(s.EscalationKeys) != len(s.EscalationCount) ||
		len(s.BlurKeys) != len(s.BlurWorkers) {
		return nil, fmt.Errorf("taskgen: snapshot array mismatch")
	}
	g := NewGenerator(s.Cfg)
	g.nextID = s.NextID
	for i, k := range s.TriedKeys {
		g.tried[k] = s.TriedCounts[i]
	}
	for i, k := range s.EscalationKeys {
		g.escalations[k] = s.EscalationCount[i]
	}
	for i, k := range s.BlurKeys {
		g.blurred[k] = append([]string(nil), s.BlurWorkers[i]...)
	}
	return g, nil
}
