package crowd

import (
	"math/rand"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/venue"
)

// libWorld builds the library with features, world and ground truth.
func libWorld(t *testing.T) (*venue.Venue, *camera.World, *grid.Map) {
	t.Helper()
	v, err := venue.Library()
	if err != nil {
		t.Fatal(err)
	}
	feats := v.GenerateFeatures(rand.New(rand.NewSource(100)))
	w := camera.NewWorld(v, feats)
	gt, err := v.GroundTruth(0.15)
	if err != nil {
		t.Fatal(err)
	}
	return v, w, gt.Obstacles
}

func TestOpportunistic(t *testing.T) {
	v, w, obstacles := libWorld(t)
	rng := rand.New(rand.NewSource(1))
	videos, err := Opportunistic(w, v, obstacles, camera.DefaultIntrinsics(),
		OpportunisticOptions{Participants: 3, TripsPerParticipant: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(videos) < 3 {
		t.Fatalf("videos = %d", len(videos))
	}
	for _, vid := range videos {
		if len(vid.Frames) == 0 {
			t.Fatal("empty video")
		}
		if vid.Path.Length() == 0 {
			t.Fatal("video without path")
		}
		// Frames must be on walkable ground.
		for _, f := range vid.Frames {
			if !v.Inside(f.Pose.Pos) {
				t.Fatalf("frame outside venue at %v", f.Pose.Pos)
			}
		}
	}
	// Frame spacing ≈ walkSpeed/fps = 0.1 m.
	f := videos[0].Frames
	if len(f) > 2 {
		d := f[0].Pose.Pos.Dist(f[1].Pose.Pos)
		if d > 0.3 {
			t.Errorf("frame spacing %v too coarse", d)
		}
	}
}

func TestOpportunisticValidation(t *testing.T) {
	v, w, _ := libWorld(t)
	rng := rand.New(rand.NewSource(2))
	if _, err := Opportunistic(w, v, nil, camera.DefaultIntrinsics(), OpportunisticOptions{}, rng); err == nil {
		t.Error("nil obstacles should error")
	}
}

func TestExtractSharpest(t *testing.T) {
	frames := make([]camera.Photo, 10)
	for i := range frames {
		frames[i].ID = i + 1
		frames[i].Sharpness = float64(i % 5)
	}
	out := ExtractSharpest(frames, 5)
	if len(out) != 2 {
		t.Fatalf("extracted %d, want 2", len(out))
	}
	// Sharpest of each window has Sharpness 4 (IDs 5 and 10).
	if out[0].ID != 5 || out[1].ID != 10 {
		t.Errorf("extracted IDs %d, %d", out[0].ID, out[1].ID)
	}
	// Window 1 or less: identity copy.
	same := ExtractSharpest(frames, 1)
	if len(same) != 10 {
		t.Error("window 1 should keep all")
	}
	// Partial final window.
	out = ExtractSharpest(frames[:7], 5)
	if len(out) != 2 {
		t.Errorf("partial window output = %d", len(out))
	}
	if got := ExtractSharpest(nil, 5); len(got) != 0 {
		t.Error("empty input should be empty")
	}
}

func TestUnguided(t *testing.T) {
	v, w, _ := libWorld(t)
	rng := rand.New(rand.NewSource(3))
	photos, err := Unguided(w, v, camera.DefaultIntrinsics(),
		UnguidedOptions{Participants: 3, PhotosEach: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(photos) < 50 || len(photos) > 90 {
		t.Fatalf("kept %d of 90 photos; blur filter should drop ~10%%", len(photos))
	}
	// All kept photos are sharp and from unblocked spots.
	for _, p := range photos {
		if p.Sharpness < 150 {
			t.Error("blurry photo kept")
		}
		if v.Blocked(p.Pose.Pos) {
			t.Errorf("photo from blocked position %v", p.Pose.Pos)
		}
	}
	// Hotspot bias: most photos within 4 m of some hotspot.
	near := 0
	for _, p := range photos {
		for _, h := range v.Hotspots() {
			if p.Pose.Pos.Dist(h) < 4 {
				near++
				break
			}
		}
	}
	if float64(near) < 0.9*float64(len(photos)) {
		t.Errorf("only %d/%d photos near hotspots", near, len(photos))
	}
}

func TestGuidedWorkerPhotoTask(t *testing.T) {
	v, w, obstacles := libWorld(t)
	rng := rand.New(rand.NewSource(4))
	gw := &GuidedWorker{
		World:      w,
		Venue:      v,
		Intrinsics: camera.DefaultIntrinsics(),
		Pos:        v.Entrance(),
	}
	loc := geom.V2(12.8, 6.5) // open floor between shelves and workstations
	res, err := gw.DoPhotoTask(obstacles, loc, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Photos) != 45 {
		t.Fatalf("sweep photos = %d, want 45", len(res.Photos))
	}
	// The achieved position is near the task location (≤1 m nav error +
	// goal-cell snapping).
	if res.Arrived.Dist(loc) > 1.6 {
		t.Errorf("arrived %v, %.2f m from task", res.Arrived, res.Arrived.Dist(loc))
	}
	if gw.Pos != res.Arrived {
		t.Error("worker position not updated")
	}
	if res.Walked.Length() == 0 {
		t.Error("no walk recorded")
	}
}

func TestGuidedWorkerBlurry(t *testing.T) {
	v, w, obstacles := libWorld(t)
	rng := rand.New(rand.NewSource(5))
	gw := &GuidedWorker{
		World:      w,
		Venue:      v,
		Intrinsics: camera.DefaultIntrinsics(),
		Pos:        v.Entrance(),
		BlurProb:   1.0,
	}
	res, err := gw.DoPhotoTask(obstacles, geom.V2(12.8, 6.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	sharpCount := 0
	for _, p := range res.Photos {
		if p.Sharpness >= 150 {
			sharpCount++
		}
	}
	if sharpCount > len(res.Photos)/2 {
		t.Errorf("blurred sweep still has %d sharp photos", sharpCount)
	}
}

func TestGuidedWorkerAnnotationTask(t *testing.T) {
	v, w, obstacles := libWorld(t)
	rng := rand.New(rand.NewSource(6))
	gw := &GuidedWorker{
		World:      w,
		Venue:      v,
		Intrinsics: camera.DefaultIntrinsics(),
		Pos:        v.Entrance(),
	}
	// Near the east glass wall.
	task, err := gw.DoAnnotationTask(obstacles, geom.V2(23, 4.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Photos) == 0 {
		t.Fatal("no annotation photos")
	}
	if task.TruthSurfaceID == 0 {
		t.Error("truth surface missing")
	}
}

func TestGuidedWorkerUnreachable(t *testing.T) {
	v, w, obstacles := libWorld(t)
	rng := rand.New(rand.NewSource(7))
	gw := &GuidedWorker{
		World:      w,
		Venue:      v,
		Intrinsics: camera.DefaultIntrinsics(),
		Pos:        geom.V2(-50, -50), // outside the map
	}
	if _, err := gw.DoPhotoTask(obstacles, geom.V2(5, 5), rng); err == nil {
		t.Error("navigation from outside the map should error")
	}
}
