// Package crowd models the three data-collection behaviours the paper
// compares: opportunistic crowdsourcing (participants go about their daily
// activities with a chest-carried recording device), unguided participatory
// crowdsourcing (participants shoot arbitrary photos, clustered around
// social hotspots), and guided participatory crowdsourcing (SnapTask
// workers navigating to assigned task locations and performing 360°
// sweeps). Movement follows the venue's real geometry via A* paths, and
// hotspot bias follows the observation the paper cites that "people tend to
// move around particular places and do not mimic arbitrary movement".
package crowd

import (
	"fmt"
	"math/rand"

	"snaptask/internal/annotation"
	"snaptask/internal/camera"
	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/nav"
	"snaptask/internal/venue"
)

// OpportunisticOptions tunes the opportunistic collection model.
type OpportunisticOptions struct {
	// Participants carrying recording devices (10 in the paper).
	Participants int
	// TripsPerParticipant is how many recorded activity trips each makes
	// (the paper collected 20 videos from 10 participants).
	TripsPerParticipant int
	// FPS is the video frame rate. Defaults to 12.
	FPS float64
	// WalkSpeed in m/s. Defaults to 1.2.
	WalkSpeed float64
}

func (o OpportunisticOptions) withDefaults() OpportunisticOptions {
	if o.Participants == 0 {
		o.Participants = 10
	}
	if o.TripsPerParticipant == 0 {
		o.TripsPerParticipant = 3
	}
	if o.FPS == 0 {
		o.FPS = 12
	}
	if o.WalkSpeed == 0 {
		o.WalkSpeed = 1.2
	}
	return o
}

// Video is one recorded trip: the raw frames plus the walked path.
type Video struct {
	Frames []camera.Photo
	Path   nav.Path
}

// Opportunistic simulates the paper's opportunistic dataset: each
// participant walks between social hotspots on their daily business while
// the device records video. Frames are captured facing the walking
// direction with motion blur that varies with gait.
func Opportunistic(w *camera.World, v *venue.Venue, truthObstacles *grid.Map, in camera.Intrinsics, opts OpportunisticOptions, rng *rand.Rand) ([]Video, error) {
	if truthObstacles == nil {
		return nil, fmt.Errorf("crowd: nil obstacle map")
	}
	opts = opts.withDefaults()
	hotspots := v.Hotspots()
	if len(hotspots) < 2 {
		return nil, fmt.Errorf("crowd: venue needs at least 2 hotspots")
	}

	var videos []Video
	for p := 0; p < opts.Participants; p++ {
		pos := v.Entrance()
		for trip := 0; trip < opts.TripsPerParticipant; trip++ {
			goal := hotspots[rng.Intn(len(hotspots))]
			if goal.Dist(pos) < 1 {
				goal = hotspots[rng.Intn(len(hotspots))]
			}
			path, err := nav.PlanPath(truthObstacles, pos, goal)
			if err != nil {
				continue // unreachable hotspot; skip the trip
			}
			video := Video{Path: path}
			step := opts.WalkSpeed / opts.FPS
			walked := walkFrames(w, path, in, step, rng)
			video.Frames = walked
			if len(video.Frames) > 0 {
				videos = append(videos, video)
			}
			pos = path[len(path)-1]
		}
	}
	if len(videos) == 0 {
		return nil, fmt.Errorf("crowd: no opportunistic videos produced")
	}
	return videos, nil
}

// walkFrames captures frames every `step` metres along the path, facing the
// walking direction, with gait-dependent motion blur.
func walkFrames(w *camera.World, path nav.Path, in camera.Intrinsics, step float64, rng *rand.Rand) []camera.Photo {
	var frames []camera.Photo
	if len(path) < 2 {
		return nil
	}
	for seg := 1; seg < len(path); seg++ {
		a, b := path[seg-1], path[seg]
		segLen := a.Dist(b)
		if segLen < 1e-9 {
			continue
		}
		dir := b.Sub(a).Norm()
		yaw := dir.Angle()
		for d := 0.0; d < segLen; d += step {
			pos := a.Add(dir.Scale(d))
			blur := 0
			// Walking shake: most frames slightly blurred, some badly.
			switch r := rng.Float64(); {
			case r < 0.25:
				blur = 0
			case r < 0.8:
				blur = 2 + rng.Intn(4)
			default:
				blur = 8 + rng.Intn(8)
			}
			photo, err := w.Capture(camera.Pose{Pos: pos, Yaw: yaw}, in,
				camera.CaptureOptions{MotionBlurLen: blur}, rng)
			if err != nil {
				continue
			}
			frames = append(frames, photo)
		}
	}
	return frames
}

// ExtractSharpest implements the paper's sliding-window frame extraction:
// split the frame sequence into consecutive windows and keep only the
// sharpest frame of each window, "to prevent blurry samples from being
// added to the dataset".
func ExtractSharpest(frames []camera.Photo, window int) []camera.Photo {
	if window <= 1 {
		return append([]camera.Photo(nil), frames...)
	}
	var out []camera.Photo
	for start := 0; start < len(frames); start += window {
		end := start + window
		if end > len(frames) {
			end = len(frames)
		}
		best := start
		for i := start + 1; i < end; i++ {
			if frames[i].Sharpness > frames[best].Sharpness {
				best = i
			}
		}
		out = append(out, frames[best])
	}
	return out
}

// UnguidedOptions tunes the unguided participatory model.
type UnguidedOptions struct {
	// Participants taking photos (10 in the paper).
	Participants int
	// PhotosEach is photos per participant (100 in the paper).
	PhotosEach int
	// HotspotSigma is the spread (metres) of photo positions around
	// hotspots. Defaults to 2.0.
	HotspotSigma float64
	// BlurProb is the chance a photo is badly blurred. Defaults to 0.1.
	BlurProb float64
	// SharpnessThreshold filters blurry photos afterwards, as the paper
	// does with the variation of the Laplacian. Defaults to 40.
	SharpnessThreshold float64
}

func (o UnguidedOptions) withDefaults() UnguidedOptions {
	if o.Participants == 0 {
		o.Participants = 10
	}
	if o.PhotosEach == 0 {
		o.PhotosEach = 100
	}
	if o.HotspotSigma == 0 {
		o.HotspotSigma = 1.5
	}
	if o.BlurProb == 0 {
		o.BlurProb = 0.1
	}
	if o.SharpnessThreshold == 0 {
		o.SharpnessThreshold = 150
	}
	return o
}

// Unguided simulates the unguided participatory dataset: arbitrary photos
// from hotspot-biased positions with random orientations, blur-filtered as
// the paper filters with the variation of the Laplacian.
func Unguided(w *camera.World, v *venue.Venue, in camera.Intrinsics, opts UnguidedOptions, rng *rand.Rand) ([]camera.Photo, error) {
	opts = opts.withDefaults()
	hotspots := v.Hotspots()
	if len(hotspots) == 0 {
		return nil, fmt.Errorf("crowd: venue has no hotspots")
	}
	var kept []camera.Photo
	for p := 0; p < opts.Participants; p++ {
		for i := 0; i < opts.PhotosEach; i++ {
			pos, ok := sampleNearHotspot(v, hotspots, opts.HotspotSigma, rng)
			if !ok {
				continue
			}
			blur := 0
			if rng.Float64() < opts.BlurProb {
				blur = 8 + rng.Intn(10)
			}
			photo, err := w.Capture(camera.Pose{Pos: pos, Yaw: rng.Float64() * 2 * 3.141592653589793}, in,
				camera.CaptureOptions{MotionBlurLen: blur}, rng)
			if err != nil {
				return nil, fmt.Errorf("crowd: unguided capture: %w", err)
			}
			if photo.Sharpness >= opts.SharpnessThreshold {
				kept = append(kept, photo)
			}
		}
	}
	return kept, nil
}

// sampleNearHotspot draws an unblocked position near a random hotspot.
func sampleNearHotspot(v *venue.Venue, hotspots []geom.Vec2, sigma float64, rng *rand.Rand) (geom.Vec2, bool) {
	for attempt := 0; attempt < 40; attempt++ {
		h := hotspots[rng.Intn(len(hotspots))]
		pos := h.Add(geom.V2(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
		if !v.Blocked(pos) {
			return pos, true
		}
	}
	return geom.Vec2{}, false
}

// GuidedWorker is a SnapTask participant who accepts tasks, navigates to
// them with the AR navigation substrate and performs the capture protocol.
type GuidedWorker struct {
	World      *camera.World
	Venue      *venue.Venue
	Intrinsics camera.Intrinsics
	// Pos is the worker's current position, updated after every task.
	Pos geom.Vec2
	// BlurProb is the chance an entire sweep comes out blurred (a
	// careless worker), exercising Algorithm 1's retry branch. Defaults
	// to 0.
	BlurProb float64
}

// PhotoTaskResult reports a completed photo-collection task.
type PhotoTaskResult struct {
	Photos []camera.Photo
	// Arrived is where the sweep actually happened (task location plus
	// navigation error — the paper's Figure 9 offsets).
	Arrived geom.Vec2
	// Walked is the navigation path taken.
	Walked nav.Path
}

// DoPhotoTask navigates to the task location over the worker's current
// knowledge of the world (the true obstacle map — people see where they
// walk) and performs the 360°/8° sweep.
func (gw *GuidedWorker) DoPhotoTask(truthObstacles *grid.Map, loc geom.Vec2, rng *rand.Rand) (PhotoTaskResult, error) {
	path, arrived, err := nav.Navigate(truthObstacles, gw.Pos, loc, rng)
	if err != nil {
		return PhotoTaskResult{}, fmt.Errorf("crowd: navigate to %v: %w", loc, err)
	}
	opts := camera.CaptureOptions{}
	if gw.BlurProb > 0 && rng.Float64() < gw.BlurProb {
		opts.MotionBlurLen = 18
	}
	photos, err := gw.World.Sweep(arrived, gw.Intrinsics, opts, rng)
	if err != nil {
		return PhotoTaskResult{}, fmt.Errorf("crowd: sweep: %w", err)
	}
	gw.Pos = arrived
	return PhotoTaskResult{Photos: photos, Arrived: arrived, Walked: path}, nil
}

// DoAnnotationTask navigates to the task location and takes the photo set
// of the featureless surface nearest to the ISSUED location (the spot the
// system kept failing at — possibly beyond a glass wall), standing at the
// closest reachable position.
func (gw *GuidedWorker) DoAnnotationTask(truthObstacles *grid.Map, loc geom.Vec2, rng *rand.Rand) (annotation.Task, error) {
	_, arrived, err := nav.Navigate(truthObstacles, gw.Pos, loc, rng)
	if err != nil {
		return annotation.Task{}, fmt.Errorf("crowd: navigate to %v: %w", loc, err)
	}
	gw.Pos = arrived
	task, err := annotation.CollectPhotos(gw.World, gw.Venue, loc, gw.Intrinsics, rng)
	if err != nil {
		return annotation.Task{}, fmt.Errorf("crowd: annotation photos: %w", err)
	}
	return task, nil
}
