package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketLayoutIsContiguous(t *testing.T) {
	// Every bucket's low bound must map back to its own index, and bounds
	// must be strictly increasing — otherwise quantiles drift.
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lo := bucketLow(i)
		if lo <= prev {
			t.Fatalf("bucket %d low %d not > previous %d", i, lo, prev)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, lo, got)
		}
		prev = lo
	}
	if got := bucketIndex(math.MaxInt64); got >= numBuckets {
		t.Fatalf("MaxInt64 index %d out of range %d", got, numBuckets)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Against an exact sorted reference, every reported quantile must be
	// within the histogram's designed ~3% relative error.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]time.Duration, 20000)
	for i := range vals {
		// Lognormal-ish spread across several decades.
		v := time.Duration(math.Exp(rng.NormFloat64()*2+13)) * time.Nanosecond
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		exact := float64(vals[idx])
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-exact) / exact; rel > 2.0/subBuckets {
			t.Errorf("q=%v: got %v exact %v rel err %.4f > %.4f",
				q, time.Duration(got), time.Duration(exact), rel, 2.0/subBuckets)
		}
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count %d != %d", h.Count(), len(vals))
	}
	if h.Quantile(1) != vals[len(vals)-1] {
		t.Fatalf("q=1 %v != max %v", h.Quantile(1), vals[len(vals)-1])
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, both Histogram
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Second)))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), both.Count())
	}
	if merged.Max() != both.Max() {
		t.Fatalf("merged max %v != %v", merged.Max(), both.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		if merged.Quantile(q) != both.Quantile(q) {
			t.Fatalf("q=%v merged %v != combined %v", q, merged.Quantile(q), both.Quantile(q))
		}
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count %d != %d", h.Count(), goroutines*per)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	s := h.Summary()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Constant{PerSec: 200}
	if got := c.Next(rng); got != 5*time.Millisecond {
		t.Fatalf("constant gap %v", got)
	}
	p := Poisson{PerSec: 200}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Next(rng)
	}
	mean := sum / n
	if mean < 4*time.Millisecond || mean > 6*time.Millisecond {
		t.Fatalf("poisson mean gap %v, want ~5ms", mean)
	}
	if _, ok := ParseArrivals("poisson", 1); !ok {
		t.Fatal("poisson not parseable")
	}
	if _, ok := ParseArrivals("weird", 1); ok {
		t.Fatal("bogus schedule accepted")
	}
}

func TestThinkTimeHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tt := ThinkTime{Median: 10 * time.Millisecond, Sigma: 1.0, Max: time.Second}
	var h Histogram
	for i := 0; i < 20000; i++ {
		d := tt.Sample(rng)
		if d > time.Second {
			t.Fatalf("sample %v above cap", d)
		}
		h.Record(d)
	}
	med, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if med < 8*time.Millisecond || med > 12*time.Millisecond {
		t.Fatalf("median %v, want ~10ms", med)
	}
	// Lognormal sigma=1: p99/median = exp(2.326) ~ 10x.
	if p99 < 5*med {
		t.Fatalf("p99 %v not heavy-tailed vs median %v", p99, med)
	}
	if (ThinkTime{}).Sample(rng) != 0 {
		t.Fatal("zero ThinkTime must not pause")
	}
}
