// Package loadgen is an open-loop load harness for SnapTask servers.
//
// Open-loop means arrivals are decoupled from responses: a pacer emits
// operations on a fixed schedule (constant or Poisson) regardless of how
// fast the server answers, and every operation's latency is measured from
// its *intended* start time, not from when a free worker finally sent it.
// That is the coordinated-omission correction: when the server stalls, the
// queued operations accumulate the stall in their recorded latency instead
// of silently disappearing from the sample, which is exactly the error a
// closed-loop "N workers in a loop" harness makes.
//
// Latencies are recorded into mergeable HDR-style histograms so per-run,
// per-campaign and per-endpoint distributions can be combined without
// losing tail resolution.
package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear, HdrHistogram style: each power-of-two range
// is split into 2^subBits equal sub-buckets, giving a bounded relative
// error of 2^-subBits (~3%) at every magnitude from 1ns to ~9.2s*10^9.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	// Values are int64 nanoseconds: the highest magnitude block starts at
	// msb 62, so indexes never exceed (62-subBits+1)*subBuckets + subBuckets.
	numBuckets = (63-subBits)*subBuckets + subBuckets
)

// bucketIndex maps a non-negative value to its log-linear bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	shift := uint(msb - subBits)
	return int((uint64(msb-subBits)+1)<<subBits) + int((u>>shift)-subBuckets)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	block := i >> subBits
	off := int64(i & (subBuckets - 1))
	shift := uint(block - 1)
	return (subBuckets + off) << shift
}

// bucketMid returns the midpoint of bucket i — the value reported for
// quantiles landing in it (bounded ~3% error either way).
func bucketMid(i int) int64 {
	lo := bucketLow(i)
	var hi int64
	if i+1 < numBuckets {
		hi = bucketLow(i+1) - 1
	} else {
		hi = math.MaxInt64
	}
	return lo + (hi-lo)/2
}

// Histogram is a lock-free, mergeable latency histogram. Concurrent
// Record calls are safe; Quantile/Merge/Snapshot see a (possibly slightly
// stale) consistent-enough view, which is fine for progress rendering and
// exact at quiescence.
//
// The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of recorded observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns the latency at quantile q in [0,1]: the midpoint of the
// bucket holding the ceil(q*count)-th observation (the max for q=1 when it
// lands in the top occupied bucket). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	if target == total {
		// The last observation is the max itself — report it exactly.
		return time.Duration(h.max.Load())
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			mid := bucketMid(i)
			if m := h.max.Load(); mid > m {
				mid = m
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max.Load())
}

// Merge folds o into h (h += o). o is read with atomic loads, so merging a
// still-recording histogram yields a valid point-in-time-ish view.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		m := h.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			break
		}
	}
}

// Quantiles is the standard tail summary exported in reports, in
// milliseconds (float for sub-ms resolution).
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Mean  float64 `json:"mean_ms"`
	Max   float64 `json:"max_ms"`
}

// Summary extracts the standard quantile set.
func (h *Histogram) Summary() Quantiles {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Quantiles{
		Count: h.Count(),
		P50:   ms(h.Quantile(0.50)),
		P95:   ms(h.Quantile(0.95)),
		P99:   ms(h.Quantile(0.99)),
		P999:  ms(h.Quantile(0.999)),
		Mean:  ms(h.Mean()),
		Max:   ms(h.Max()),
	}
}
