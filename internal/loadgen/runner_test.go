package loadgen

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func fastOp(status int) func(context.Context, int, *rand.Rand) OpResult {
	return func(context.Context, int, *rand.Rand) OpResult {
		return OpResult{Status: status}
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	res, err := Run(context.Background(), Config{
		Workers:  4,
		Arrivals: Constant{PerSec: 2000},
		Duration: 200 * time.Millisecond,
		Seed:     1,
		Ops: []OpSpec{
			{Name: "ok", Weight: 1, Do: fastOp(200)},
			{Name: "shed", Weight: 1, Do: fastOp(429)},
			{Name: "err", Weight: 1, Do: fastOp(500)},
			{Name: "notask", Weight: 1, Do: fastOp(404)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done == 0 || res.Done != res.Offered-res.Unsent {
		t.Fatalf("done=%d offered=%d unsent=%d", res.Done, res.Offered, res.Unsent)
	}
	if n := res.Endpoints["ok"].OK.Load(); n != res.Endpoints["ok"].Done.Load() || n == 0 {
		t.Fatalf("ok endpoint misclassified: %d ok of %d", n, res.Endpoints["ok"].Done.Load())
	}
	if n := res.Endpoints["shed"].Shed.Load(); n != res.Endpoints["shed"].Done.Load() {
		t.Fatalf("429 not counted as shed")
	}
	if n := res.Endpoints["err"].Errors.Load(); n != res.Endpoints["err"].Done.Load() {
		t.Fatalf("500 not counted as error")
	}
	// Expected 4xx (claim's no-task 404) is ok, not an error.
	if n := res.Endpoints["notask"].OK.Load(); n != res.Endpoints["notask"].Done.Load() {
		t.Fatalf("404 not counted as ok")
	}
	if res.Achieved <= 0 || res.OfferedRate != 2000 {
		t.Fatalf("rates achieved=%v offered=%v", res.Achieved, res.OfferedRate)
	}
}

// TestCoordinatedOmissionCorrection is the core property of the harness:
// when the server stalls, intended-start-time latencies must absorb the
// stall (arrivals kept coming) even though per-request service time looks
// innocent. A closed-loop harness would report ~stall/#requests here.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const stall = 300 * time.Millisecond
	var first atomic.Bool
	first.Store(true)
	op := func(ctx context.Context, _ int, _ *rand.Rand) OpResult {
		if first.CompareAndSwap(true, false) {
			sleepCtx(ctx, stall) // one long stall at the start
		}
		return OpResult{Status: 200}
	}
	res, err := Run(context.Background(), Config{
		Workers:  1, // single worker so the stall blocks the whole fleet
		Arrivals: Constant{PerSec: 100},
		Duration: 400 * time.Millisecond,
		Seed:     2,
		Ops:      []OpSpec{{Name: "upload", Weight: 1, Do: op}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Endpoints["upload"]
	if st.Done.Load() < 20 {
		t.Fatalf("only %d ops done", st.Done.Load())
	}
	// Corrected p95: most arrivals during the stall waited a large chunk
	// of it. Service p95 stays tiny (each op after the first is instant).
	corrected := st.Corrected.Quantile(0.95)
	service := st.Service.Quantile(0.95)
	if corrected < stall/4 {
		t.Fatalf("corrected p95 %v did not absorb the %v stall", corrected, stall)
	}
	if service > stall/4 {
		t.Fatalf("service p95 %v unexpectedly large", service)
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := Run(ctx, Config{
		Workers:  2,
		Arrivals: Constant{PerSec: 10},
		Duration: time.Hour,
		Seed:     3,
		Ops:      []OpSpec{{Name: "x", Weight: 1, Do: fastOp(200)}},
	})
	if err == nil {
		t.Fatal("want context error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run promptly")
	}
}

func TestRunConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Workers: 1},
		{Workers: 1, Arrivals: Constant{PerSec: 1}},
		{Workers: 1, Arrivals: Constant{PerSec: 1}, Duration: time.Second},
		{Workers: 1, Arrivals: Constant{PerSec: 1}, Duration: time.Second,
			Ops: []OpSpec{{Name: "x", Weight: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var calls atomic.Int64
	_, err := Run(context.Background(), Config{
		Workers:          2,
		Arrivals:         Poisson{PerSec: 500},
		Duration:         250 * time.Millisecond,
		Seed:             4,
		ProgressInterval: 50 * time.Millisecond,
		OnProgress: func(p Progress) {
			calls.Add(1)
			if p.Elapsed <= 0 {
				t.Error("progress with zero elapsed")
			}
		},
		Ops: []OpSpec{{Name: "x", Weight: 1, Do: fastOp(200)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
}
