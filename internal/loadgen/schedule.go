package loadgen

import (
	"math"
	"math/rand"
	"time"
)

// Arrivals produces the inter-arrival gaps of an open-loop schedule. The
// pacer sums the gaps into intended start times before the run begins
// (logically — implementation streams them), so gaps never depend on
// observed response times.
type Arrivals interface {
	// Next returns the gap to the next arrival. rng is owned by the pacer.
	Next(rng *rand.Rand) time.Duration
	// Rate returns the offered rate in operations/second.
	Rate() float64
}

// Constant emits arrivals on a fixed period — the classic fixed-QPS
// schedule, worst case for coordinated omission because every stall delays
// a maximal number of intended sends.
type Constant struct{ PerSec float64 }

func (c Constant) Next(*rand.Rand) time.Duration {
	return time.Duration(float64(time.Second) / c.PerSec)
}
func (c Constant) Rate() float64 { return c.PerSec }

// Poisson emits arrivals as a Poisson process (exponential gaps) — the
// standard model for a large independent client population.
type Poisson struct{ PerSec float64 }

func (p Poisson) Next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() / p.PerSec * float64(time.Second))
}
func (p Poisson) Rate() float64 { return p.PerSec }

// ParseArrivals maps a schedule name to its Arrivals implementation.
func ParseArrivals(name string, perSec float64) (Arrivals, bool) {
	switch name {
	case "poisson":
		return Poisson{PerSec: perSec}, true
	case "constant":
		return Constant{PerSec: perSec}, true
	}
	return nil, false
}

// ThinkTime is a heavy-tailed (lognormal) pause: most workers resume
// quickly, a few wander off for much longer — the shape crowdsourcing
// deployments report for human task gaps. Median is the lognormal median;
// Sigma is the log-domain spread (1.0 gives a ~7x p99/median ratio);
// Max caps the tail so a finite run cannot strand workers.
type ThinkTime struct {
	Median time.Duration
	Sigma  float64
	Max    time.Duration
}

// Sample draws one pause. A zero Median disables thinking entirely.
func (t ThinkTime) Sample(rng *rand.Rand) time.Duration {
	if t.Median <= 0 {
		return 0
	}
	d := time.Duration(float64(t.Median) * math.Exp(t.Sigma*rng.NormFloat64()))
	if t.Max > 0 && d > t.Max {
		d = t.Max
	}
	return d
}
