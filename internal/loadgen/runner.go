package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// OpSpec is one operation type in the traffic mix (upload, locate, claim,
// ...). Do performs a single operation; the harness classifies the result:
// transport errors and 5xx count as errors, 429 counts as shed, anything
// else (including expected 4xx like claim's 404 no-task) counts as ok.
type OpSpec struct {
	Name   string
	Weight float64
	Do     func(ctx context.Context, worker int, rng *rand.Rand) OpResult
}

// OpResult is the outcome of one operation.
type OpResult struct {
	Status int // HTTP status; 0 means transport error
	Err    error
}

// Churn makes simulated workers crash and rejoin: after finishing an
// operation a worker crashes with probability CrashProb and stays away for
// a heavy-tailed Outage draw — during which offered load keeps arriving
// (open loop), so the remaining fleet absorbs it and the latency histograms
// show the capacity dip honestly.
type Churn struct {
	CrashProb float64
	Outage    ThinkTime
}

// Config drives one open-loop run.
type Config struct {
	Workers  int           // simulated fleet size executing the schedule
	Arrivals Arrivals      // offered schedule (constant or poisson)
	Duration time.Duration // pacing window; draining may extend the run
	Ops      []OpSpec      // traffic mix, picked per-arrival by weight
	Think    ThinkTime     // per-operation heavy-tail pause (zero = none)
	Churn    Churn         // crash/rejoin behaviour (zero = none)
	Seed     int64
	// DrainTimeout bounds how long workers may keep serving queued
	// arrivals after the schedule ends (default 30s); arrivals still
	// queued at the deadline are abandoned and counted in Result.Unsent.
	DrainTimeout time.Duration
	// OnProgress, when set, is called roughly once per ProgressInterval
	// (default 1s) from a dedicated goroutine.
	OnProgress       func(Progress)
	ProgressInterval time.Duration
}

// EndpointStats aggregates one operation type. Corrected holds latencies
// measured from the intended start time (coordinated-omission corrected:
// includes harness queue wait); Service holds send-to-response time as a
// conventional closed-loop harness would report it.
type EndpointStats struct {
	Name      string
	Offered   atomic.Uint64 // arrivals scheduled for this endpoint
	Done      atomic.Uint64
	OK        atomic.Uint64
	Shed      atomic.Uint64 // 429 responses
	Errors    atomic.Uint64 // transport errors and 5xx
	Corrected Histogram
	Service   Histogram
}

// Progress is a point-in-time view for live rendering.
type Progress struct {
	Elapsed   time.Duration
	Offered   uint64
	Done      uint64
	OK        uint64
	Shed      uint64
	Errors    uint64
	Queued    int     // arrivals waiting for a free worker
	Achieved  float64 // done/elapsed ops/sec
	P99 map[string]time.Duration // corrected p99 per endpoint so far
}

// Result is the final aggregate of a run.
type Result struct {
	Elapsed     time.Duration
	OfferedRate float64 // configured schedule rate, ops/sec
	Achieved    float64 // completed ops/sec over the whole run
	Offered     uint64  // arrivals the schedule produced
	Done        uint64
	Unsent      uint64 // arrivals abandoned at the drain deadline
	Endpoints   map[string]*EndpointStats
}

type ticket struct {
	intended time.Time
	op       *OpSpec
}

// Run executes one open-loop load run and blocks until the schedule has
// been fully served (or abandoned at the drain deadline) or ctx is
// cancelled.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("loadgen: Workers must be > 0")
	}
	if cfg.Arrivals == nil || cfg.Arrivals.Rate() <= 0 {
		return nil, errors.New("loadgen: Arrivals with a positive rate required")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be > 0")
	}
	if len(cfg.Ops) == 0 {
		return nil, errors.New("loadgen: at least one OpSpec required")
	}
	total := 0.0
	for i := range cfg.Ops {
		if cfg.Ops[i].Weight < 0 || cfg.Ops[i].Do == nil {
			return nil, fmt.Errorf("loadgen: op %q needs a non-negative weight and a Do func", cfg.Ops[i].Name)
		}
		total += cfg.Ops[i].Weight
	}
	if total <= 0 {
		return nil, errors.New("loadgen: total op weight must be > 0")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = time.Second
	}

	stats := make(map[string]*EndpointStats, len(cfg.Ops))
	for i := range cfg.Ops {
		stats[cfg.Ops[i].Name] = &EndpointStats{Name: cfg.Ops[i].Name}
	}

	// The ticket queue holds the whole schedule in the worst case (server
	// fully stalled), so the pacer never blocks and offered load is never
	// silently capped by the harness itself.
	capacity := int(cfg.Arrivals.Rate()*cfg.Duration.Seconds()*1.5) + 1024
	tickets := make(chan ticket, capacity)

	start := time.Now()
	var offered atomic.Uint64

	// Pacer: streams intended start times from the schedule and enqueues
	// tickets when due. Catch-up after a coarse sleep enqueues every ticket
	// whose intended time has passed without further sleeping, so the
	// schedule holds even when timer resolution is poor.
	pacerDone := make(chan struct{})
	go func() {
		defer close(pacerDone)
		defer close(tickets)
		rng := rand.New(rand.NewSource(cfg.Seed))
		intended := start
		deadline := start.Add(cfg.Duration)
		for {
			intended = intended.Add(cfg.Arrivals.Next(rng))
			if intended.After(deadline) {
				return
			}
			if d := time.Until(intended); d > 0 {
				if !sleepCtx(ctx, d) {
					return
				}
			}
			op := pickOp(cfg.Ops, total, rng)
			select {
			case tickets <- ticket{intended: intended, op: op}:
				offered.Add(1)
				stats[op.Name].Offered.Add(1)
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: pull tickets, execute, record, think, maybe crash.
	workCtx, cancelWork := context.WithCancel(ctx)
	defer cancelWork()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1 + int64(worker)))
			for {
				select {
				case <-workCtx.Done():
					return
				case tk, ok := <-tickets:
					if !ok {
						return
					}
					st := stats[tk.op.Name]
					sent := time.Now()
					res := tk.op.Do(workCtx, worker, rng)
					now := time.Now()
					st.Corrected.Record(now.Sub(tk.intended))
					st.Service.Record(now.Sub(sent))
					st.Done.Add(1)
					switch {
					case res.Err != nil || res.Status == 0 || res.Status >= 500:
						st.Errors.Add(1)
					case res.Status == 429:
						st.Shed.Add(1)
					default:
						st.OK.Add(1)
					}
					if !sleepCtx(workCtx, cfg.Think.Sample(rng)) {
						return
					}
					if cfg.Churn.CrashProb > 0 && rng.Float64() < cfg.Churn.CrashProb {
						if !sleepCtx(workCtx, cfg.Churn.Outage.Sample(rng)) {
							return
						}
					}
				}
			}
		}(w)
	}

	// Progress reporter.
	progDone := make(chan struct{})
	go func() {
		defer close(progDone)
		if cfg.OnProgress == nil {
			return
		}
		tick := time.NewTicker(cfg.ProgressInterval)
		defer tick.Stop()
		for {
			select {
			case <-workCtx.Done():
				return
			case <-tick.C:
				cfg.OnProgress(snapshotProgress(start, stats, &offered, len(tickets)))
			}
		}
	}()

	// Wait for the schedule to end, then give workers DrainTimeout to
	// serve the backlog before abandoning it.
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	<-pacerDone
	select {
	case <-workersDone:
	case <-time.After(cfg.DrainTimeout):
		cancelWork()
		<-workersDone
	case <-ctx.Done():
		<-workersDone
	}
	cancelWork()
	<-progDone

	var unsent uint64
	for range tickets {
		unsent++
	}

	elapsed := time.Since(start)
	res := &Result{
		Elapsed:     elapsed,
		OfferedRate: cfg.Arrivals.Rate(),
		Offered:     offered.Load(),
		Unsent:      unsent,
		Endpoints:   stats,
	}
	for _, st := range stats {
		res.Done += st.Done.Load()
	}
	if s := elapsed.Seconds(); s > 0 {
		res.Achieved = float64(res.Done) / s
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

func snapshotProgress(start time.Time, stats map[string]*EndpointStats, offered *atomic.Uint64, queued int) Progress {
	p := Progress{
		Elapsed: time.Since(start),
		Offered: offered.Load(),
		Queued:  queued,
		P99:     make(map[string]time.Duration, len(stats)),
	}
	for name, st := range stats {
		p.Done += st.Done.Load()
		p.OK += st.OK.Load()
		p.Shed += st.Shed.Load()
		p.Errors += st.Errors.Load()
		p.P99[name] = st.Corrected.Quantile(0.99)
	}
	if s := p.Elapsed.Seconds(); s > 0 {
		p.Achieved = float64(p.Done) / s
	}
	return p
}

func pickOp(ops []OpSpec, total float64, rng *rand.Rand) *OpSpec {
	r := rng.Float64() * total
	for i := range ops {
		r -= ops[i].Weight
		if r < 0 {
			return &ops[i]
		}
	}
	return &ops[len(ops)-1]
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports whether
// the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
