package incentive

import (
	"math/rand"
	"testing"

	"snaptask/internal/camera"
	"snaptask/internal/core"
	"snaptask/internal/geom"
	"snaptask/internal/taskgen"
	"snaptask/internal/venue"
)

func TestParticipantValidate(t *testing.T) {
	good := Participant{ID: 1, BaseReward: 2, PerMetre: 0.1, Reliability: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid participant rejected: %v", err)
	}
	bad := []Participant{
		{ID: 2, BaseReward: -1, Reliability: 0.9},
		{ID: 3, PerMetre: -0.1, Reliability: 0.9},
		{ID: 4, Reliability: 0},
		{ID: 5, Reliability: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("participant %d accepted", p.ID)
		}
	}
}

func TestCostAndScore(t *testing.T) {
	p := Participant{ID: 1, Pos: geom.V2(0, 0), BaseReward: 2, PerMetre: 0.5, Reliability: 0.8}
	task := geom.V2(3, 4) // 5 m away
	if got := p.Cost(task); got != 2+2.5 {
		t.Errorf("cost = %v, want 4.5", got)
	}
	if got := p.Score(task); got != 0.8/4.5 {
		t.Errorf("score = %v", got)
	}
	// A closer participant with the same terms scores higher.
	near := p
	near.Pos = geom.V2(3, 3.5)
	if near.Score(task) <= p.Score(task) {
		t.Error("closer participant should score higher")
	}
}

func TestSelectParticipant(t *testing.T) {
	task := taskgen.Task{ID: 1, Location: geom.V2(10, 10)}
	pool := []Participant{
		{ID: 1, Pos: geom.V2(0, 0), BaseReward: 1, PerMetre: 0.5, Reliability: 0.9},  // far
		{ID: 2, Pos: geom.V2(9, 10), BaseReward: 1, PerMetre: 0.5, Reliability: 0.9}, // near
		{ID: 3, Pos: geom.V2(10, 9), BaseReward: 1, PerMetre: 0.5, Reliability: 0.2}, // near, unreliable
	}
	a, ok := SelectParticipant(task, pool, nil, 100)
	if !ok || a.ParticipantID != 2 {
		t.Fatalf("selected %+v, want participant 2", a)
	}
	// Busy exclusion falls back to the next best.
	a, ok = SelectParticipant(task, pool, map[int]bool{2: true}, 100)
	if !ok || a.ParticipantID == 2 {
		t.Fatalf("busy participant selected: %+v", a)
	}
	// Budget gate: nobody affordable.
	if _, ok := SelectParticipant(task, pool, nil, 0.5); ok {
		t.Error("selection under impossible budget should fail")
	}
}

func TestAssignTasks(t *testing.T) {
	tasks := []taskgen.Task{
		{ID: 1, Location: geom.V2(1, 1)},
		{ID: 2, Location: geom.V2(9, 9)},
		{ID: 3, Location: geom.V2(5, 5)},
	}
	pool := []Participant{
		{ID: 1, Pos: geom.V2(1, 1), BaseReward: 2, PerMetre: 0.1, Reliability: 0.9},
		{ID: 2, Pos: geom.V2(9, 9), BaseReward: 2, PerMetre: 0.1, Reliability: 0.9},
	}
	assignments, remaining := AssignTasks(tasks, pool, 10)
	if len(assignments) != 2 {
		t.Fatalf("assignments = %d, want 2 (pool exhausted)", len(assignments))
	}
	// Each participant at most once.
	if assignments[0].ParticipantID == assignments[1].ParticipantID {
		t.Error("participant double-booked")
	}
	if remaining >= 10 {
		t.Error("budget not decremented")
	}
	// Tight budget limits assignments.
	assignments, _ = AssignTasks(tasks, pool, 2.5)
	if len(assignments) != 1 {
		t.Errorf("tight budget assignments = %d, want 1", len(assignments))
	}
}

func TestCampaignAccounting(t *testing.T) {
	c, err := NewCampaign(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pay(Assignment{ParticipantID: 1, Cost: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Pay(Assignment{ParticipantID: 2, Cost: 5}); err != nil {
		t.Fatal(err)
	}
	if c.Spent() != 9 || c.Remaining() != 1 {
		t.Errorf("spent %v remaining %v", c.Spent(), c.Remaining())
	}
	if c.PaidTo(1) != 4 || c.PaidTo(2) != 5 || c.PaidTo(3) != 0 {
		t.Error("per-participant accounting wrong")
	}
	if err := c.Pay(Assignment{ParticipantID: 1, Cost: 2}); err == nil {
		t.Error("over-budget payment accepted")
	}
	if _, err := NewCampaign(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestUniformPool(t *testing.T) {
	bounds := geom.NewAABB(geom.V2(0, 0), geom.V2(10, 10))
	a := UniformPool(20, bounds, 2, 0.1, 0.6, 7)
	b := UniformPool(20, bounds, 2, 0.1, 0.6, 7)
	if len(a) != 20 {
		t.Fatalf("pool size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pool generation not deterministic")
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("generated participant invalid: %v", err)
		}
		if !bounds.Contains(a[i].Pos) {
			t.Fatalf("participant outside bounds: %v", a[i].Pos)
		}
		if a[i].Reliability < 0.6 {
			t.Fatalf("reliability %v below floor", a[i].Reliability)
		}
	}
}

func TestRunCampaignSmallRoom(t *testing.T) {
	v, err := venue.SmallRoom()
	if err != nil {
		t.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	sys, err := core.NewSystem(v, world, core.Config{Margin: 3})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := v.GroundTruthAt(sys.Layout())
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := NewCampaign(500)
	if err != nil {
		t.Fatal(err)
	}
	pool := UniformPool(5, v.Bounds(), 3, 0.2, 0.85, 11)
	res, err := RunCampaign(sys, pool, campaign, v.WalkMap(gt), 60, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("campaign did not cover the room: %+v", res)
	}
	if res.Spent <= 0 || res.Spent > 500 {
		t.Errorf("spent %v outside budget", res.Spent)
	}
	total := 0
	for _, n := range res.PerParticipant {
		total += n
	}
	if total != res.PhotoTasks+res.AnnotationTasks {
		t.Error("per-participant counts inconsistent")
	}
	if campaign.Spent() != res.Spent {
		t.Error("campaign accounting mismatch")
	}
}

func TestRunCampaignBudgetExhaustion(t *testing.T) {
	v, err := venue.SmallRoom()
	if err != nil {
		t.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	sys, err := core.NewSystem(v, world, core.Config{Margin: 3})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := v.GroundTruthAt(sys.Layout())
	if err != nil {
		t.Fatal(err)
	}
	// A budget that affords roughly one task.
	campaign, err := NewCampaign(5)
	if err != nil {
		t.Fatal(err)
	}
	pool := UniformPool(5, v.Bounds(), 3, 0.2, 0.85, 11)
	res, err := RunCampaign(sys, pool, campaign, v.WalkMap(gt), 60, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Error("tiny budget should not finish the venue")
	}
	if res.TasksDropped == 0 {
		t.Error("budget exhaustion not recorded")
	}
}

func TestRunCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(nil, nil, nil, nil, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestSelectParticipantSkipsInvalid(t *testing.T) {
	task := taskgen.Task{ID: 1, Location: geom.V2(5, 5)}
	pool := []Participant{
		{ID: 1, Pos: geom.V2(5, 4), BaseReward: -2, Reliability: 0.9}, // invalid
		{ID: 2, Pos: geom.V2(5, 9), BaseReward: 1, PerMetre: 0.2, Reliability: 0.7},
	}
	a, ok := SelectParticipant(task, pool, nil, 100)
	if !ok || a.ParticipantID != 2 {
		t.Fatalf("invalid participant not skipped: %+v", a)
	}
}

func TestRunCampaignInvalidPool(t *testing.T) {
	v, err := venue.SmallRoom()
	if err != nil {
		t.Fatal(err)
	}
	world := camera.NewWorld(v, nil)
	sys, err := core.NewSystem(v, world, core.Config{Margin: 3})
	if err != nil {
		t.Fatal(err)
	}
	gt, err := v.GroundTruthAt(sys.Layout())
	if err != nil {
		t.Fatal(err)
	}
	campaign, _ := NewCampaign(100)
	bad := []Participant{{ID: 1, Reliability: 2}}
	if _, err := RunCampaign(sys, bad, campaign, v.WalkMap(gt), 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid pool accepted")
	}
	if _, err := RunCampaign(sys, nil, campaign, v.WalkMap(gt), 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty pool accepted")
	}
}
