// Package incentive implements the extension the paper's conclusion plans:
// incentive mechanisms and location-based participant selection. SnapTask
// computes WHERE to collect data; this package decides WHO collects it —
// selecting, for each generated task, the participant with the best
// expected quality-of-information per unit cost, under a campaign budget,
// in the spirit of the QoI-aware selection literature the paper builds on
// (Zhang et al., Song et al.).
package incentive

import (
	"fmt"
	"math"
	"sort"

	"snaptask/internal/geom"
	"snaptask/internal/taskgen"
)

// Participant is a registered crowd worker available for tasks.
type Participant struct {
	// ID is unique within the pool.
	ID int
	// Pos is the participant's current position.
	Pos geom.Vec2
	// BaseReward is the incentive demanded per completed task.
	BaseReward float64
	// PerMetre is the travel compensation per metre walked.
	PerMetre float64
	// Reliability is the probability the participant's capture is usable
	// (steady, on-location). Unreliable workers force the paper's retry
	// path, which costs additional tasks.
	Reliability float64
}

// Validate reports whether the participant's parameters are usable.
func (p Participant) Validate() error {
	if p.BaseReward < 0 || p.PerMetre < 0 {
		return fmt.Errorf("incentive: participant %d has negative costs", p.ID)
	}
	if p.Reliability <= 0 || p.Reliability > 1 {
		return fmt.Errorf("incentive: participant %d reliability %v outside (0,1]", p.ID, p.Reliability)
	}
	return nil
}

// Cost returns the expected payment for sending the participant to the
// task location.
func (p Participant) Cost(task geom.Vec2) float64 {
	return p.BaseReward + p.PerMetre*p.Pos.Dist(task)
}

// Score is the selection objective: expected usable captures per unit
// cost. Higher is better.
func (p Participant) Score(task geom.Vec2) float64 {
	c := p.Cost(task)
	if c <= 0 {
		c = 1e-9
	}
	return p.Reliability / c
}

// Assignment pairs a task with the participant selected for it.
type Assignment struct {
	TaskID        int
	ParticipantID int
	Cost          float64
	Score         float64
}

// SelectParticipant picks the best affordable participant for one task,
// excluding the busy set. ok is false when nobody affordable remains.
func SelectParticipant(task taskgen.Task, pool []Participant, busy map[int]bool, budget float64) (Assignment, bool) {
	best := Assignment{Score: -1}
	for _, p := range pool {
		if busy[p.ID] || p.Validate() != nil {
			continue
		}
		cost := p.Cost(task.Location)
		if cost > budget {
			continue
		}
		if s := p.Score(task.Location); s > best.Score {
			best = Assignment{
				TaskID:        task.ID,
				ParticipantID: p.ID,
				Cost:          cost,
				Score:         s,
			}
		}
	}
	return best, best.Score >= 0
}

// AssignTasks performs a greedy budgeted assignment of tasks to the pool:
// tasks are considered in order, each receiving the currently
// best-scoring free participant the remaining budget can afford. It
// returns the assignments and the unspent budget.
func AssignTasks(tasks []taskgen.Task, pool []Participant, budget float64) ([]Assignment, float64) {
	busy := make(map[int]bool)
	var out []Assignment
	for _, t := range tasks {
		a, ok := SelectParticipant(t, pool, busy, budget)
		if !ok {
			continue
		}
		busy[a.ParticipantID] = true
		budget -= a.Cost
		out = append(out, a)
	}
	return out, budget
}

// Campaign tracks spending over a mapping campaign.
type Campaign struct {
	// Budget is the total incentive budget.
	Budget float64
	spent  float64
	paid   map[int]float64
}

// NewCampaign returns a campaign with the given budget.
func NewCampaign(budget float64) (*Campaign, error) {
	if budget < 0 {
		return nil, fmt.Errorf("incentive: negative budget %v", budget)
	}
	return &Campaign{Budget: budget, paid: make(map[int]float64)}, nil
}

// Remaining returns the unspent budget.
func (c *Campaign) Remaining() float64 { return c.Budget - c.spent }

// Spent returns the total paid so far.
func (c *Campaign) Spent() float64 { return c.spent }

// PaidTo returns the total paid to one participant.
func (c *Campaign) PaidTo(participantID int) float64 { return c.paid[participantID] }

// Pay records a completed assignment. It fails when the campaign cannot
// afford it — callers must check affordability when selecting.
func (c *Campaign) Pay(a Assignment) error {
	if a.Cost > c.Remaining()+1e-9 {
		return fmt.Errorf("incentive: assignment costs %.2f but only %.2f remains", a.Cost, c.Remaining())
	}
	c.spent += a.Cost
	c.paid[a.ParticipantID] += a.Cost
	return nil
}

// UniformPool generates n participants spread over the venue bounds with
// the given cost and reliability ranges, deterministically from the seed —
// a convenience for experiments.
func UniformPool(n int, bounds geom.AABB, baseReward, perMetre float64, minReliability float64, seed int64) []Participant {
	pool := make([]Participant, 0, n)
	// A tiny deterministic LCG keeps the package free of math/rand
	// bookkeeping for this helper.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		pool = append(pool, Participant{
			ID:          i + 1,
			Pos:         geom.V2(bounds.Min.X+next()*bounds.Width(), bounds.Min.Y+next()*bounds.Height()),
			BaseReward:  baseReward * (0.75 + 0.5*next()),
			PerMetre:    perMetre * (0.75 + 0.5*next()),
			Reliability: math.Min(1, minReliability+(1-minReliability)*next()),
		})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	return pool
}
