package incentive

import (
	"fmt"
	"math/rand"

	"snaptask/internal/annotation"
	"snaptask/internal/camera"
	"snaptask/internal/core"
	"snaptask/internal/crowd"
	"snaptask/internal/grid"
	"snaptask/internal/taskgen"
)

// cameraIntrinsics returns the device optics participants carry.
func cameraIntrinsics() camera.Intrinsics { return camera.DefaultIntrinsics() }

// CampaignResult summarises an incentivised mapping campaign.
type CampaignResult struct {
	// TasksCompleted counts executed tasks by kind.
	PhotoTasks, AnnotationTasks int
	// TasksDropped counts tasks nobody affordable could take.
	TasksDropped int
	// Spent is the total incentive paid.
	Spent float64
	// Covered reports whether the venue completed within budget.
	Covered bool
	// PerParticipant is the number of tasks each participant executed.
	PerParticipant map[int]int
}

// RunCampaign runs the guided mapping loop with location-based participant
// selection under a budget: every generated task goes to the
// best-QoI-per-cost affordable participant near it; participants move to
// where their last task took them; unreliable participants produce blurred
// sweeps that trigger the backend's retry path. The campaign ends when the
// venue is covered, the budget cannot afford any assignment, or maxTasks
// trips.
func RunCampaign(
	sys *core.System,
	pool []Participant,
	campaign *Campaign,
	walkMap *grid.Map,
	maxTasks int,
	rng *rand.Rand,
) (CampaignResult, error) {
	res := CampaignResult{PerParticipant: make(map[int]int)}
	if sys == nil || campaign == nil || walkMap == nil {
		return res, fmt.Errorf("incentive: nil system, campaign or walk map")
	}
	if len(pool) == 0 {
		return res, fmt.Errorf("incentive: empty participant pool")
	}
	for _, p := range pool {
		if err := p.Validate(); err != nil {
			return res, err
		}
	}
	if maxTasks <= 0 {
		maxTasks = 200
	}

	// Each participant gets a worker avatar tracking their position.
	workers := make(map[int]*crowd.GuidedWorker, len(pool))
	positions := make(map[int]int, len(pool)) // participant → pool index
	for i, p := range pool {
		workers[p.ID] = &crowd.GuidedWorker{
			World:      sys.World(),
			Venue:      sys.Venue(),
			Intrinsics: cameraIntrinsics(),
			Pos:        p.Pos,
		}
		positions[p.ID] = i
	}

	// Bootstrap by the overall cheapest participant (the paper's authors
	// did it themselves; here it is an assignment like any other).
	boot, err := core.BootstrapCapture(sys.World(), sys.Venue(), cameraIntrinsics(), rng)
	if err != nil {
		return res, err
	}
	if _, err := sys.ProcessBootstrap(boot, rng); err != nil {
		return res, err
	}

	for i := 0; i < maxTasks; i++ {
		if sys.Covered() {
			break
		}
		task, ok := sys.NextTask()
		if !ok {
			return res, fmt.Errorf("incentive: loop stalled — no pending task and venue not covered")
		}
		a, ok := SelectParticipant(task, pool, nil, campaign.Remaining())
		if !ok {
			// Out of budget for this task: the campaign ends here.
			res.TasksDropped++
			break
		}
		if err := campaign.Pay(a); err != nil {
			return res, err
		}
		res.Spent = campaign.Spent()
		res.PerParticipant[a.ParticipantID]++
		worker := workers[a.ParticipantID]
		// Careless captures are the complement of reliability.
		worker.BlurProb = 1 - pool[positions[a.ParticipantID]].Reliability

		switch task.Kind {
		case taskgen.KindPhoto:
			ptr, err := worker.DoPhotoTask(walkMap, task.Location, rng)
			if err != nil {
				return res, fmt.Errorf("incentive: photo task %d: %w", task.ID, err)
			}
			if _, err := sys.ProcessPhotoBatch(task.Location, task.AimPoint(), ptr.Photos, rng); err != nil {
				return res, err
			}
			res.PhotoTasks++
		case taskgen.KindAnnotation:
			atask, err := worker.DoAnnotationTask(walkMap, task.AimPoint(), rng)
			if err != nil {
				return res, fmt.Errorf("incentive: annotation task %d: %w", task.ID, err)
			}
			anns, err := annotation.SimulateWorkers(atask, sys.Venue(), annotation.WorkerOptions{}, rng)
			if err != nil {
				return res, err
			}
			if _, err := sys.ProcessAnnotation(atask, task.AimPoint(), anns, rng); err != nil {
				return res, err
			}
			res.AnnotationTasks++
		}
		// The participant is now at the task site.
		pool[positions[a.ParticipantID]].Pos = worker.Pos
	}
	res.Covered = sys.Covered()
	return res, nil
}
