// Package grid provides the dense 2D raster maps SnapTask's mapping layer is
// built on: integer matrices indexed by cell, anchored to world coordinates
// at a configurable resolution (15 cm in the paper, adjustable 10–50 cm),
// plus the raster operations the algorithms need — segment and polygon
// rasterisation, flood fill and connected components.
package grid

import (
	"fmt"
	"math"

	"snaptask/internal/geom"
)

// Cell addresses one grid cell. I is the column (x direction), J the row
// (y direction).
type Cell struct {
	I, J int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("[%d,%d]", c.I, c.J) }

// Neighbors4 returns the 4-connected neighbours (left, right, down, up) in a
// fixed order. Callers must bounds-check.
func (c Cell) Neighbors4() [4]Cell {
	return [4]Cell{
		{c.I - 1, c.J},
		{c.I + 1, c.J},
		{c.I, c.J - 1},
		{c.I, c.J + 1},
	}
}

// Neighbors8 returns the 8-connected neighbours. Callers must bounds-check.
func (c Cell) Neighbors8() [8]Cell {
	return [8]Cell{
		{c.I - 1, c.J - 1}, {c.I, c.J - 1}, {c.I + 1, c.J - 1},
		{c.I - 1, c.J}, {c.I + 1, c.J},
		{c.I - 1, c.J + 1}, {c.I, c.J + 1}, {c.I + 1, c.J + 1},
	}
}

// Map is a dense 2D matrix of ints anchored in world space. The world point
// Origin maps to the lower-left corner of cell (0,0); each cell covers
// Res × Res metres. The zero value is not usable; construct with New or
// NewFromBounds.
type Map struct {
	origin geom.Vec2
	res    float64
	w, h   int
	cells  []int
}

// New returns a w×h map at resolution res metres/cell anchored at origin.
// It returns an error for non-positive dimensions or resolution.
func New(origin geom.Vec2, res float64, w, h int) (*Map, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("grid: dimensions %dx%d must be positive", w, h)
	}
	if res <= 0 {
		return nil, fmt.Errorf("grid: resolution %v must be positive", res)
	}
	return &Map{
		origin: origin,
		res:    res,
		w:      w,
		h:      h,
		cells:  make([]int, w*h),
	}, nil
}

// NewFromBounds returns a map covering the world-space box b at resolution
// res, rounding the dimensions up so the whole box is covered.
func NewFromBounds(b geom.AABB, res float64) (*Map, error) {
	if b.Empty() {
		return nil, fmt.Errorf("grid: empty bounds")
	}
	if res <= 0 {
		return nil, fmt.Errorf("grid: resolution %v must be positive", res)
	}
	w := int(math.Ceil(b.Width()/res)) + 1
	h := int(math.Ceil(b.Height()/res)) + 1
	return New(b.Min, res, w, h)
}

// Width returns the number of columns.
func (m *Map) Width() int { return m.w }

// Height returns the number of rows.
func (m *Map) Height() int { return m.h }

// Res returns the cell resolution in metres.
func (m *Map) Res() float64 { return m.res }

// Origin returns the world coordinate of the lower-left corner of cell (0,0).
func (m *Map) Origin() geom.Vec2 { return m.origin }

// CellArea returns the world area of one cell in m².
func (m *Map) CellArea() float64 { return m.res * m.res }

// InBounds reports whether c addresses a cell inside the map.
func (m *Map) InBounds(c Cell) bool {
	return c.I >= 0 && c.I < m.w && c.J >= 0 && c.J < m.h
}

// At returns the value at c. Out-of-bounds cells read as 0.
func (m *Map) At(c Cell) int {
	if !m.InBounds(c) {
		return 0
	}
	return m.cells[c.J*m.w+c.I]
}

// Set stores v at c. Out-of-bounds writes are ignored.
func (m *Map) Set(c Cell, v int) {
	if !m.InBounds(c) {
		return
	}
	m.cells[c.J*m.w+c.I] = v
}

// Add increments the value at c by dv. Out-of-bounds writes are ignored.
func (m *Map) Add(c Cell, dv int) {
	if !m.InBounds(c) {
		return
	}
	m.cells[c.J*m.w+c.I] += dv
}

// Fill sets every cell to v.
func (m *Map) Fill(v int) {
	for i := range m.cells {
		m.cells[i] = v
	}
}

// NewLike returns an empty map with the same origin, resolution and
// dimensions as m.
func NewLike(m *Map) *Map {
	out, _ := New(m.origin, m.res, m.w, m.h) // m is valid, so this cannot fail
	return out
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	out := &Map{origin: m.origin, res: m.res, w: m.w, h: m.h, cells: make([]int, len(m.cells))}
	copy(out.cells, m.cells)
	return out
}

// SameLayout reports whether o has identical origin, resolution and
// dimensions, i.e. whether cells correspond one-to-one.
func (m *Map) SameLayout(o *Map) bool {
	return o != nil && m.w == o.w && m.h == o.h && m.res == o.res &&
		m.origin.ApproxEq(o.origin)
}

// CellOf returns the cell containing world point p. The cell may be out of
// bounds; callers check with InBounds.
func (m *Map) CellOf(p geom.Vec2) Cell {
	return Cell{
		I: int(math.Floor((p.X - m.origin.X) / m.res)),
		J: int(math.Floor((p.Y - m.origin.Y) / m.res)),
	}
}

// CenterOf returns the world-space centre of cell c.
func (m *Map) CenterOf(c Cell) geom.Vec2 {
	return geom.Vec2{
		X: m.origin.X + (float64(c.I)+0.5)*m.res,
		Y: m.origin.Y + (float64(c.J)+0.5)*m.res,
	}
}

// Bounds returns the world-space box covered by the map.
func (m *Map) Bounds() geom.AABB {
	return geom.AABB{
		Min: m.origin,
		Max: m.origin.Add(geom.V2(float64(m.w)*m.res, float64(m.h)*m.res)),
	}
}

// CountIf returns the number of cells whose value satisfies pred.
func (m *Map) CountIf(pred func(int) bool) int {
	n := 0
	for _, v := range m.cells {
		if pred(v) {
			n++
		}
	}
	return n
}

// CountPositive returns the number of cells with value > 0, the paper's
// definition of a covered/occupied cell.
func (m *Map) CountPositive() int {
	return m.CountIf(func(v int) bool { return v > 0 })
}

// Each calls fn for every cell in row-major order.
func (m *Map) Each(fn func(c Cell, v int)) {
	for j := 0; j < m.h; j++ {
		for i := 0; i < m.w; i++ {
			fn(Cell{i, j}, m.cells[j*m.w+i])
		}
	}
}

// Union returns a new map whose cells are positive wherever either input is
// positive (value 1), requiring identical layouts.
func (m *Map) Union(o *Map) (*Map, error) {
	if !m.SameLayout(o) {
		return nil, fmt.Errorf("grid: union of mismatched layouts %dx%d vs %dx%d", m.w, m.h, o.w, o.h)
	}
	out, err := New(m.origin, m.res, m.w, m.h)
	if err != nil {
		return nil, err
	}
	for i := range m.cells {
		if m.cells[i] > 0 || o.cells[i] > 0 {
			out.cells[i] = 1
		}
	}
	return out, nil
}

// RasterizeSegment marks every cell the segment passes through by applying
// fn to it, using a conservative supercover traversal (all cells the segment
// touches, not just one per column).
func (m *Map) RasterizeSegment(s geom.Segment, fn func(c Cell)) {
	// Amanatides & Woo style voxel traversal in grid coordinates.
	start := s.A.Sub(m.origin).Scale(1 / m.res)
	end := s.B.Sub(m.origin).Scale(1 / m.res)
	x, y := int(math.Floor(start.X)), int(math.Floor(start.Y))
	xEnd, yEnd := int(math.Floor(end.X)), int(math.Floor(end.Y))
	dx, dy := end.X-start.X, end.Y-start.Y

	stepX, stepY := 0, 0
	tMaxX, tMaxY := math.Inf(1), math.Inf(1)
	tDeltaX, tDeltaY := math.Inf(1), math.Inf(1)
	if dx > 0 {
		stepX = 1
		tMaxX = (math.Floor(start.X) + 1 - start.X) / dx
		tDeltaX = 1 / dx
	} else if dx < 0 {
		stepX = -1
		tMaxX = (start.X - math.Floor(start.X)) / -dx
		tDeltaX = -1 / dx
	}
	if dy > 0 {
		stepY = 1
		tMaxY = (math.Floor(start.Y) + 1 - start.Y) / dy
		tDeltaY = 1 / dy
	} else if dy < 0 {
		stepY = -1
		tMaxY = (start.Y - math.Floor(start.Y)) / -dy
		tDeltaY = -1 / dy
	}

	maxSteps := m.w + m.h + int(math.Abs(float64(xEnd-x))+math.Abs(float64(yEnd-y))) + 4
	for step := 0; step < maxSteps; step++ {
		fn(Cell{x, y})
		if x == xEnd && y == yEnd {
			return
		}
		if tMaxX < tMaxY {
			tMaxX += tDeltaX
			x += stepX
		} else {
			tMaxY += tDeltaY
			y += stepY
		}
	}
}

// RasterizePolygon applies fn to every in-bounds cell whose centre lies
// inside the polygon.
func (m *Map) RasterizePolygon(p geom.Polygon, fn func(c Cell)) {
	b := p.Bounds()
	lo := m.CellOf(b.Min)
	hi := m.CellOf(b.Max)
	for j := max(lo.J, 0); j <= min(hi.J, m.h-1); j++ {
		for i := max(lo.I, 0); i <= min(hi.I, m.w-1); i++ {
			c := Cell{i, j}
			if p.Contains(m.CenterOf(c)) {
				fn(c)
			}
		}
	}
}
