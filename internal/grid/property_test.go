package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snaptask/internal/geom"
)

// TestUnionProperties checks commutativity and idempotence of Union over
// random maps.
func TestUnionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	gen := func() *Map {
		m, err := New(geom.V2(0, 0), 1, 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			m.Set(Cell{I: rng.Intn(12), J: rng.Intn(9)}, rng.Intn(3))
		}
		return m
	}
	for trial := 0; trial < 50; trial++ {
		a, b := gen(), gen()
		ab, err := a.Union(b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := b.Union(a)
		if err != nil {
			t.Fatal(err)
		}
		aa, err := a.Union(a)
		if err != nil {
			t.Fatal(err)
		}
		ab.Each(func(c Cell, v int) {
			if v != ba.At(c) {
				t.Fatalf("union not commutative at %v", c)
			}
			if v == 0 && (a.At(c) > 0 || b.At(c) > 0) {
				t.Fatalf("union lost a positive cell at %v", c)
			}
		})
		aa.Each(func(c Cell, v int) {
			if (v > 0) != (a.At(c) > 0) {
				t.Fatalf("self-union changed positivity at %v", c)
			}
		})
	}
}

// TestFloodFillSubsetProperty: every visited cell passes the predicate and
// is in bounds.
func TestFloodFillSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		m, err := New(geom.V2(0, 0), 1, 15, 15)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			m.Set(Cell{I: rng.Intn(15), J: rng.Intn(15)}, 1)
		}
		pass := func(c Cell) bool { return m.At(c) == 0 }
		start := Cell{I: rng.Intn(15), J: rng.Intn(15)}
		seen := FloodFill(m, start, pass, nil)
		for c := range seen {
			if !m.InBounds(c) || !pass(c) {
				t.Fatalf("flood visited invalid cell %v", c)
			}
		}
		// Flood result is closed under 4-connectivity within pass cells:
		// no passing neighbour of a seen cell is unseen... unless it is
		// unreachable, which cannot happen for direct neighbours.
		for c := range seen {
			for _, n := range c.Neighbors4() {
				if m.InBounds(n) && pass(n) && !seen[n] {
					t.Fatalf("flood missed reachable neighbour %v of %v", n, c)
				}
			}
		}
	}
}

// TestCellOfCenterOfQuick: CellOf(CenterOf(c)) == c for random layouts.
func TestCellOfCenterOfQuick(t *testing.T) {
	f := func(ox, oy int16, resQ uint8, i, j uint8) bool {
		res := 0.05 + float64(resQ%100)/100
		m, err := New(geom.V2(float64(ox)/7, float64(oy)/7), res, 300, 300)
		if err != nil {
			return false
		}
		c := Cell{I: int(i) % 300, J: int(j) % 300}
		return m.CellOf(m.CenterOf(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Error(err)
	}
}

// TestRasterizeSegmentEndpoints: the traversal always includes both
// endpoint cells, for arbitrary segments.
func TestRasterizeSegmentEndpointsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m, err := New(geom.V2(0, 0), 0.25, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		a := geom.V2(rng.Float64()*20, rng.Float64()*20)
		b := geom.V2(rng.Float64()*20, rng.Float64()*20)
		first, last := Cell{-1, -1}, Cell{-1, -1}
		m.RasterizeSegment(geom.Seg(a, b), func(c Cell) {
			if first == (Cell{-1, -1}) {
				first = c
			}
			last = c
		})
		if first != m.CellOf(a) {
			t.Fatalf("first cell %v != CellOf(a) %v", first, m.CellOf(a))
		}
		if last != m.CellOf(b) {
			t.Fatalf("last cell %v != CellOf(b) %v", last, m.CellOf(b))
		}
	}
}
