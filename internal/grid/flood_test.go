package grid

import (
	"testing"

	"snaptask/internal/geom"
)

// wallMap builds a 7x7 map with a vertical wall (value 1) at column 3,
// leaving a gap at row 6.
func wallMap(t *testing.T) *Map {
	t.Helper()
	m := mustNew(t, geom.V2(0, 0), 1, 7, 7)
	for j := 0; j < 6; j++ {
		m.Set(Cell{3, j}, 1)
	}
	return m
}

func free(m *Map) func(Cell) bool {
	return func(c Cell) bool { return m.At(c) == 0 }
}

func TestFloodFillRespectsWalls(t *testing.T) {
	m := wallMap(t)
	seen := FloodFill(m, Cell{0, 0}, free(m), nil)
	// Reachable: all free cells (wall has a gap at row 6).
	wantCells := 7*7 - 6
	if len(seen) != wantCells {
		t.Errorf("flood reached %d cells, want %d", len(seen), wantCells)
	}
	if seen[Cell{3, 2}] {
		t.Error("flood went through a wall cell")
	}
	if !seen[Cell{6, 0}] {
		t.Error("flood failed to go around the wall gap")
	}
}

func TestFloodFillSealedRoom(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 7, 7)
	for j := 0; j < 7; j++ {
		m.Set(Cell{3, j}, 1) // full wall, no gap
	}
	seen := FloodFill(m, Cell{0, 0}, free(m), nil)
	if len(seen) != 3*7 {
		t.Errorf("sealed flood reached %d cells, want 21", len(seen))
	}
	for c := range seen {
		if c.I > 2 {
			t.Errorf("flood escaped sealed region: %v", c)
		}
	}
}

func TestFloodFillBadStart(t *testing.T) {
	m := wallMap(t)
	if got := FloodFill(m, Cell{3, 0}, free(m), nil); len(got) != 0 {
		t.Error("start on a wall should visit nothing")
	}
	if got := FloodFill(m, Cell{-1, -1}, free(m), nil); len(got) != 0 {
		t.Error("out-of-bounds start should visit nothing")
	}
}

func TestFloodFillVisitOrderIsBFS(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 5, 5)
	var order []Cell
	FloodFill(m, Cell{2, 2}, free(m), func(c Cell) { order = append(order, c) })
	if order[0] != (Cell{2, 2}) {
		t.Fatalf("first visited = %v, want start", order[0])
	}
	// BFS property: Manhattan distance from start is non-decreasing.
	prev := 0
	for _, c := range order {
		d := abs(c.I-2) + abs(c.J-2)
		if d < prev-1 {
			t.Fatalf("visit order not BFS-like at %v (d=%d after %d)", c, d, prev)
		}
		if d > prev {
			prev = d
		}
	}
}

func TestExpandRegionLimit(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 10, 10)
	seen := make(map[Cell]bool)
	r := ExpandRegion(m, Cell{5, 5}, 7, free(m), seen)
	if r.Size() != 7 {
		t.Errorf("region size = %d, want 7", r.Size())
	}
	// seen contains at least the region (plus frontier cells already queued).
	for _, c := range r.Cells {
		if !seen[c] {
			t.Errorf("region cell %v not marked seen", c)
		}
	}
	// A second expansion from inside the first must return empty.
	r2 := ExpandRegion(m, Cell{5, 5}, 7, free(m), seen)
	if r2.Size() != 0 {
		t.Error("re-expansion from seen seed should be empty")
	}
}

func TestExpandRegionExhaustsComponent(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 4, 4)
	// Isolate a 2x2 corner with walls.
	for i := 0; i < 3; i++ {
		m.Set(Cell{i, 2}, 1)
		m.Set(Cell{2, i}, 1)
	}
	seen := make(map[Cell]bool)
	r := ExpandRegion(m, Cell{0, 0}, 100, free(m), seen)
	if r.Size() != 4 {
		t.Errorf("region size = %d, want 4", r.Size())
	}
}

func TestExpandRegionEdgeCases(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 4, 4)
	seen := make(map[Cell]bool)
	if r := ExpandRegion(m, Cell{0, 0}, 0, free(m), seen); r.Size() != 0 {
		t.Error("zero limit should be empty")
	}
	m.Set(Cell{1, 1}, 1)
	if r := ExpandRegion(m, Cell{1, 1}, 5, free(m), seen); r.Size() != 0 {
		t.Error("blocked seed should be empty")
	}
}

func TestRegionCenter(t *testing.T) {
	r := Region{Cells: []Cell{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}}
	if got := r.Center(); got != (Cell{2, 0}) {
		t.Errorf("Center = %v, want [2,0]", got)
	}
	// Center must be a member cell even for L-shaped regions whose mean
	// falls outside.
	l := Region{Cells: []Cell{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}}}
	got := l.Center()
	found := false
	for _, c := range l.Cells {
		if c == got {
			found = true
		}
	}
	if !found {
		t.Errorf("Center %v is not a member of the region", got)
	}
	if (Region{}).Center() != (Cell{}) {
		t.Error("empty region centre should be zero cell")
	}
}

func TestConnectedComponents(t *testing.T) {
	m := wallMap(t) // wall at column 3 rows 0..5, gap at row 6
	// Close the gap to split into two components.
	m.Set(Cell{3, 6}, 1)
	regions := ConnectedComponents(m, free(m))
	if len(regions) != 2 {
		t.Fatalf("components = %d, want 2", len(regions))
	}
	if regions[0].Size() != 3*7 || regions[1].Size() != 3*7 {
		t.Errorf("component sizes = %d, %d, want 21 each", regions[0].Size(), regions[1].Size())
	}
	// Deterministic order: first region contains (0,0).
	if regions[0].Cells[0] != (Cell{0, 0}) {
		t.Errorf("first component starts at %v", regions[0].Cells[0])
	}
}

func TestConnectedComponentsNone(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 3, 3)
	m.Fill(1)
	if got := ConnectedComponents(m, free(m)); len(got) != 0 {
		t.Errorf("expected no components, got %d", len(got))
	}
}

func TestNeighbors(t *testing.T) {
	c := Cell{2, 3}
	n4 := c.Neighbors4()
	if len(n4) != 4 {
		t.Fatal("n4 wrong length")
	}
	for _, n := range n4 {
		if abs(n.I-c.I)+abs(n.J-c.J) != 1 {
			t.Errorf("4-neighbor %v not adjacent", n)
		}
	}
	n8 := c.Neighbors8()
	seen := map[Cell]bool{}
	for _, n := range n8 {
		if n == c {
			t.Error("cell is its own neighbour")
		}
		if abs(n.I-c.I) > 1 || abs(n.J-c.J) > 1 {
			t.Errorf("8-neighbor %v too far", n)
		}
		if seen[n] {
			t.Errorf("duplicate neighbour %v", n)
		}
		seen[n] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct 8-neighbours = %d", len(seen))
	}
}
