package grid

// FloodFill performs a breadth-first traversal over 4-connected in-bounds
// cells starting at start, visiting every reachable cell for which pass
// returns true. It invokes visit on each accepted cell and returns the set
// of visited cells. Cells failing pass are never visited and block traversal
// through them.
//
// This is the primitive behind Algorithm 4 (findUnvisited): SnapTask walks
// out from the initial position through free space, looking for cells with
// too few camera views.
func FloodFill(m *Map, start Cell, pass func(c Cell) bool, visit func(c Cell)) map[Cell]bool {
	seen := make(map[Cell]bool)
	if !m.InBounds(start) || !pass(start) {
		return seen
	}
	queue := []Cell{start}
	seen[start] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visit != nil {
			visit(c)
		}
		for _, n := range c.Neighbors4() {
			if !m.InBounds(n) || seen[n] || !pass(n) {
				continue
			}
			seen[n] = true
			queue = append(queue, n)
		}
	}
	return seen
}

// Region is a 4-connected set of cells found by ConnectedComponents or
// ExpandRegion.
type Region struct {
	Cells []Cell
}

// Size returns the number of cells in the region.
func (r Region) Size() int { return len(r.Cells) }

// Center returns the cell whose coordinates are closest to the arithmetic
// mean of the region, which SnapTask converts to a world position for a new
// task. The zero Cell is returned for an empty region.
func (r Region) Center() Cell {
	if len(r.Cells) == 0 {
		return Cell{}
	}
	var si, sj float64
	for _, c := range r.Cells {
		si += float64(c.I)
		sj += float64(c.J)
	}
	mi := si / float64(len(r.Cells))
	mj := sj / float64(len(r.Cells))
	best := r.Cells[0]
	bestD := cellDist(best, mi, mj)
	for _, c := range r.Cells[1:] {
		if d := cellDist(c, mi, mj); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func cellDist(c Cell, mi, mj float64) float64 {
	di := float64(c.I) - mi
	dj := float64(c.J) - mj
	return di*di + dj*dj
}

// ExpandRegion grows a region from seed over 4-connected cells accepted by
// pass, stopping once the region reaches limit cells (or the component is
// exhausted). Cells already present in seen are skipped and newly visited
// cells are added to seen, so successive expansions never overlap. This is
// the expand() step of Algorithm 4.
func ExpandRegion(m *Map, seed Cell, limit int, pass func(c Cell) bool, seen map[Cell]bool) Region {
	var region Region
	if limit <= 0 || !m.InBounds(seed) || seen[seed] || !pass(seed) {
		return region
	}
	queue := []Cell{seed}
	seen[seed] = true
	for len(queue) > 0 && len(region.Cells) < limit {
		c := queue[0]
		queue = queue[1:]
		region.Cells = append(region.Cells, c)
		for _, n := range c.Neighbors4() {
			if !m.InBounds(n) || seen[n] || !pass(n) {
				continue
			}
			seen[n] = true
			queue = append(queue, n)
		}
	}
	return region
}

// ConnectedComponents returns the 4-connected components of the cells for
// which pass returns true, in deterministic scan order (by lowest row, then
// column, of their first cell).
func ConnectedComponents(m *Map, pass func(c Cell) bool) []Region {
	seen := make(map[Cell]bool)
	var regions []Region
	for j := 0; j < m.Height(); j++ {
		for i := 0; i < m.Width(); i++ {
			c := Cell{i, j}
			if seen[c] || !pass(c) {
				continue
			}
			var region Region
			queue := []Cell{c}
			seen[c] = true
			for len(queue) > 0 {
				q := queue[0]
				queue = queue[1:]
				region.Cells = append(region.Cells, q)
				for _, n := range q.Neighbors4() {
					if !m.InBounds(n) || seen[n] || !pass(n) {
						continue
					}
					seen[n] = true
					queue = append(queue, n)
				}
			}
			regions = append(regions, region)
		}
	}
	return regions
}
