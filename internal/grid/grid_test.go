package grid

import (
	"math"
	"testing"

	"snaptask/internal/geom"
)

func mustNew(t *testing.T, origin geom.Vec2, res float64, w, h int) *Map {
	t.Helper()
	m, err := New(origin, res, w, h)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		res     float64
		w, h    int
		wantErr bool
	}{
		{"ok", 0.15, 10, 10, false},
		{"zero-width", 0.15, 0, 10, true},
		{"neg-height", 0.15, 10, -1, true},
		{"zero-res", 0, 10, 10, true},
		{"neg-res", -0.1, 10, 10, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(geom.V2(0, 0), tt.res, tt.w, tt.h)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewFromBounds(t *testing.T) {
	b := geom.NewAABB(geom.V2(0, 0), geom.V2(3, 1.5))
	m, err := NewFromBounds(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() < 6 || m.Height() < 3 {
		t.Errorf("map %dx%d too small for bounds", m.Width(), m.Height())
	}
	if !m.Bounds().Contains(geom.V2(3, 1.5)) {
		t.Error("bounds must cover the box")
	}
	if _, err := NewFromBounds(geom.EmptyAABB(), 0.5); err == nil {
		t.Error("empty bounds should error")
	}
	if _, err := NewFromBounds(b, 0); err == nil {
		t.Error("zero res should error")
	}
}

func TestAtSetAdd(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 3, 3)
	c := Cell{1, 2}
	m.Set(c, 5)
	if got := m.At(c); got != 5 {
		t.Errorf("At = %d, want 5", got)
	}
	m.Add(c, 2)
	if got := m.At(c); got != 7 {
		t.Errorf("after Add, At = %d, want 7", got)
	}
	// Out-of-bounds: reads zero, writes ignored silently.
	oob := Cell{-1, 0}
	if m.At(oob) != 0 {
		t.Error("OOB read should be 0")
	}
	m.Set(oob, 9)
	m.Add(oob, 9)
	if m.CountPositive() != 1 {
		t.Error("OOB writes must not change the map")
	}
}

func TestCellOfCenterOfRoundTrip(t *testing.T) {
	m := mustNew(t, geom.V2(-2, 3), 0.15, 40, 40)
	for _, c := range []Cell{{0, 0}, {5, 7}, {39, 39}, {13, 2}} {
		p := m.CenterOf(c)
		if got := m.CellOf(p); got != c {
			t.Errorf("round trip %v -> %v -> %v", c, p, got)
		}
	}
	// A point just inside a cell boundary belongs to that cell.
	p := geom.V2(-2+0.15*3+1e-9, 3+1e-9)
	if got := m.CellOf(p); got != (Cell{3, 0}) {
		t.Errorf("boundary point cell = %v", got)
	}
}

func TestUnion(t *testing.T) {
	a := mustNew(t, geom.V2(0, 0), 1, 4, 4)
	b := mustNew(t, geom.V2(0, 0), 1, 4, 4)
	a.Set(Cell{0, 0}, 3)
	b.Set(Cell{1, 1}, 2)
	a.Set(Cell{2, 2}, 1)
	b.Set(Cell{2, 2}, 4)
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.CountPositive(); got != 3 {
		t.Errorf("union positive cells = %d, want 3", got)
	}
	mismatch := mustNew(t, geom.V2(0, 0), 1, 5, 4)
	if _, err := a.Union(mismatch); err == nil {
		t.Error("union of mismatched layouts should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 2, 2)
	m.Set(Cell{0, 0}, 1)
	c := m.Clone()
	c.Set(Cell{1, 1}, 9)
	if m.At(Cell{1, 1}) != 0 {
		t.Error("clone shares storage with original")
	}
	if c.At(Cell{0, 0}) != 1 {
		t.Error("clone lost data")
	}
	if !m.SameLayout(c) {
		t.Error("clone layout differs")
	}
}

func TestCountIfEach(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 3, 2)
	m.Set(Cell{0, 0}, -1)
	m.Set(Cell{2, 1}, 5)
	if got := m.CountIf(func(v int) bool { return v != 0 }); got != 2 {
		t.Errorf("CountIf = %d, want 2", got)
	}
	var cells int
	var sum int
	m.Each(func(c Cell, v int) { cells++; sum += v })
	if cells != 6 || sum != 4 {
		t.Errorf("Each visited %d cells sum %d, want 6 and 4", cells, sum)
	}
}

func TestRasterizeSegment(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 10, 10)
	var hits []Cell
	m.RasterizeSegment(geom.Seg(geom.V2(0.5, 0.5), geom.V2(4.5, 0.5)), func(c Cell) {
		hits = append(hits, c)
	})
	if len(hits) != 5 {
		t.Fatalf("horizontal segment hit %d cells, want 5: %v", len(hits), hits)
	}
	for i, c := range hits {
		if c != (Cell{i, 0}) {
			t.Errorf("hit %d = %v, want [%d,0]", i, c, i)
		}
	}

	// Diagonal: supercover traversal must be 4-connected step-wise and
	// include both endpoints' cells.
	hits = nil
	m.RasterizeSegment(geom.Seg(geom.V2(0.5, 0.5), geom.V2(3.5, 2.5)), func(c Cell) {
		hits = append(hits, c)
	})
	if hits[0] != (Cell{0, 0}) || hits[len(hits)-1] != (Cell{3, 2}) {
		t.Errorf("diagonal endpoints wrong: %v", hits)
	}
	for i := 1; i < len(hits); i++ {
		d := abs(hits[i].I-hits[i-1].I) + abs(hits[i].J-hits[i-1].J)
		if d != 1 {
			t.Errorf("traversal jumped from %v to %v", hits[i-1], hits[i])
		}
	}

	// Degenerate single-point segment.
	hits = nil
	m.RasterizeSegment(geom.Seg(geom.V2(2.2, 2.2), geom.V2(2.2, 2.2)), func(c Cell) {
		hits = append(hits, c)
	})
	if len(hits) != 1 || hits[0] != (Cell{2, 2}) {
		t.Errorf("point segment hits = %v", hits)
	}
}

func TestRasterizeSegmentLeavingGrid(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 4, 4)
	// Segment extends beyond the grid; traversal must terminate and the
	// callback may receive out-of-bounds cells which Set will ignore.
	n := 0
	m.RasterizeSegment(geom.Seg(geom.V2(0.5, 0.5), geom.V2(20.5, 0.5)), func(c Cell) {
		n++
		m.Add(c, 1)
	})
	if n != 21 {
		t.Errorf("visited %d cells, want 21", n)
	}
	if m.CountPositive() != 4 {
		t.Errorf("in-bounds marked = %d, want 4", m.CountPositive())
	}
}

func TestRasterizePolygon(t *testing.T) {
	m := mustNew(t, geom.V2(0, 0), 1, 10, 10)
	sq := geom.Rect(geom.V2(1, 1), geom.V2(4, 4))
	n := 0
	m.RasterizePolygon(sq, func(c Cell) { n++; m.Set(c, 1) })
	// Cells with centres at 1.5, 2.5, 3.5 in each axis → 3×3.
	if n != 9 {
		t.Errorf("rasterized %d cells, want 9", n)
	}
	if m.At(Cell{1, 1}) != 1 || m.At(Cell{3, 3}) != 1 || m.At(Cell{4, 4}) != 0 {
		t.Error("wrong cells marked")
	}
	// Polygon partially outside the grid must not panic and must clip.
	n = 0
	m.RasterizePolygon(geom.Rect(geom.V2(-5, -5), geom.V2(0.9, 0.9)), func(c Cell) { n++ })
	if n != 1 {
		t.Errorf("clipped rasterization = %d cells, want 1", n)
	}
}

func TestBoundsAndCellArea(t *testing.T) {
	m := mustNew(t, geom.V2(1, 2), 0.5, 4, 6)
	b := m.Bounds()
	if !b.Min.ApproxEq(geom.V2(1, 2)) || !b.Max.ApproxEq(geom.V2(3, 5)) {
		t.Errorf("bounds = %+v", b)
	}
	if math.Abs(m.CellArea()-0.25) > 1e-12 {
		t.Errorf("cell area = %v", m.CellArea())
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
