package metrics

import (
	"fmt"

	"snaptask/internal/grid"
)

// Pixel intensities of the PGM map rendering.
const (
	pgmUnknown  = 255 // white, like the paper's figures
	pgmVisible  = 180 // light grey (green in the paper)
	pgmObstacle = 0   // black
	pgmOutside  = 230 // faint grey outside the ground-truth area
)

// WritePGM renders the obstacle/visibility pair as a binary PGM (P5) image,
// north-up, one pixel per cell — a drop-in way to look at any map with a
// stock image viewer and the raster twin of the paper's Figure 12 panels.
// truthCoverage is optional; when given, cells outside it render faintly.
func WritePGM(obstacles, visibility, truthCoverage *grid.Map) ([]byte, error) {
	if obstacles == nil || visibility == nil {
		return nil, fmt.Errorf("metrics: nil map")
	}
	if !obstacles.SameLayout(visibility) {
		return nil, fmt.Errorf("metrics: layouts differ")
	}
	w, h := obstacles.Width(), obstacles.Height()
	header := fmt.Sprintf("P5\n%d %d\n255\n", w, h)
	out := make([]byte, 0, len(header)+w*h)
	out = append(out, header...)
	for j := h - 1; j >= 0; j-- {
		for i := 0; i < w; i++ {
			c := grid.Cell{I: i, J: j}
			var v byte
			switch {
			case truthCoverage != nil && truthCoverage.At(c) == 0:
				v = pgmOutside
			case obstacles.At(c) > 0:
				v = pgmObstacle
			case visibility.At(c) > 0:
				v = pgmVisible
			default:
				v = pgmUnknown
			}
			out = append(out, v)
		}
	}
	return out, nil
}
