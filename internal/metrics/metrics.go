// Package metrics computes the paper's evaluation quantities: model
// coverage against the ground-truth map (Figure 11b), reconstructed
// outer-bounds length (Figure 11a), and the precision / recall / F-score of
// featureless-surface reconstruction (Table I). It also renders maps as
// text for the Figure 12 comparison.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/venue"
)

// BoundsMatchThreshold is the paper's T = 0.15 m: two bound segments count
// as one when closer than this.
const BoundsMatchThreshold = 0.15

// CoveragePercent returns the percentage of ground-truth coverage cells
// that the generated coverage map also covers. Cells outside the
// ground-truth coverage area are ignored, as in the paper's comparison.
func CoveragePercent(generated, truth *grid.Map) (float64, error) {
	if generated == nil || truth == nil {
		return 0, fmt.Errorf("metrics: nil map")
	}
	if !generated.SameLayout(truth) {
		return 0, fmt.Errorf("metrics: generated and truth layouts differ")
	}
	total, hit := 0, 0
	truth.Each(func(c grid.Cell, v int) {
		if v <= 0 {
			return
		}
		total++
		if generated.At(c) > 0 {
			hit++
		}
	})
	if total == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	return 100 * float64(hit) / float64(total), nil
}

// OuterBoundsPercent returns the percentage of the venue's outer-wall
// length that the obstacle map reconstructs: sample points along every
// outer surface count as reconstructed when an obstacle cell lies within
// the match threshold.
func OuterBoundsPercent(obstacles *grid.Map, outer []venue.Surface, threshold float64) (float64, error) {
	if obstacles == nil {
		return 0, fmt.Errorf("metrics: nil obstacle map")
	}
	if threshold <= 0 {
		threshold = BoundsMatchThreshold
	}
	const step = 0.05
	var total, matched float64
	for _, s := range outer {
		length := s.Seg.Len()
		n := int(length/step) + 1
		for i := 0; i <= n; i++ {
			p := s.Seg.At(float64(i) / float64(n))
			total += length / float64(n+1)
			if obstacleNear(obstacles, p, threshold) {
				matched += length / float64(n+1)
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: no outer surfaces")
	}
	return 100 * matched / total, nil
}

// obstacleNear reports whether any positive obstacle cell lies within
// threshold of p.
func obstacleNear(m *grid.Map, p geom.Vec2, threshold float64) bool {
	r := int(math.Ceil(threshold/m.Res())) + 1
	center := m.CellOf(p)
	for di := -r; di <= r; di++ {
		for dj := -r; dj <= r; dj++ {
			c := grid.Cell{I: center.I + di, J: center.J + dj}
			if !m.InBounds(c) || m.At(c) <= 0 {
				continue
			}
			if m.CenterOf(c).Dist(p) <= threshold+m.Res()*0.71 {
				return true
			}
		}
	}
	return false
}

// PRF bundles precision, recall and F-score.
type PRF struct {
	Precision, Recall, F float64
}

// Interval is a [Lo, Hi] stretch along a surface footprint, in metres from
// the segment's A endpoint.
type Interval struct {
	Lo, Hi float64
}

// MergeIntervals unions overlapping intervals.
func MergeIntervals(in []Interval) []Interval {
	if len(in) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), in...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalLength sums interval lengths.
func TotalLength(in []Interval) float64 {
	var sum float64
	for _, iv := range in {
		if iv.Hi > iv.Lo {
			sum += iv.Hi - iv.Lo
		}
	}
	return sum
}

// FeaturelessPRF scores reconstructed spans against a featureless surface:
// precision is the fraction of reconstructed span length lying on the true
// surface (within tol), recall the fraction of the surface's visible
// stretch covered by reconstruction, F their harmonic mean — the Table I
// quantities.
func FeaturelessPRF(spans []geom.Segment, truth venue.Surface, visible []Interval, tol float64) PRF {
	if tol <= 0 {
		tol = 0.25
	}
	const step = 0.05

	// Precision: sampled points of every span near the truth segment.
	var total, onSurface float64
	for _, span := range spans {
		n := int(span.Len()/step) + 1
		for i := 0; i <= n; i++ {
			p := span.At(float64(i) / float64(n))
			total++
			if truth.Seg.DistToPoint(p) <= tol {
				onSurface++
			}
		}
	}
	var out PRF
	if total > 0 {
		out.Precision = onSurface / total
	}

	// Recall: sampled points of the visible stretches near any span.
	merged := MergeIntervals(visible)
	var visTotal, covered float64
	length := truth.Seg.Len()
	for _, iv := range merged {
		lo := math.Max(0, iv.Lo)
		hi := math.Min(length, iv.Hi)
		if hi <= lo {
			continue
		}
		n := int((hi-lo)/step) + 1
		for i := 0; i <= n; i++ {
			d := lo + (hi-lo)*float64(i)/float64(n)
			p := truth.Seg.At(d / length)
			visTotal++
			for _, span := range spans {
				if span.DistToPoint(p) <= tol {
					covered++
					break
				}
			}
		}
	}
	if visTotal > 0 {
		out.Recall = covered / visTotal
	}
	if out.Precision+out.Recall > 0 {
		out.F = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// RenderASCII draws obstacle (#), visibility (.) and unknown ( ) cells for
// a quick Figure 12-style look at a map pair. Rows are printed north-up
// (highest J first). Cells outside the ground-truth coverage print as '·'.
func RenderASCII(obstacles, visibility, truthCoverage *grid.Map) (string, error) {
	if obstacles == nil || visibility == nil {
		return "", fmt.Errorf("metrics: nil map")
	}
	if !obstacles.SameLayout(visibility) {
		return "", fmt.Errorf("metrics: layouts differ")
	}
	var b []byte
	for j := obstacles.Height() - 1; j >= 0; j-- {
		for i := 0; i < obstacles.Width(); i++ {
			c := grid.Cell{I: i, J: j}
			switch {
			case truthCoverage != nil && truthCoverage.At(c) == 0:
				b = append(b, ' ')
			case obstacles.At(c) > 0:
				b = append(b, '#')
			case visibility.At(c) > 0:
				b = append(b, '.')
			default:
				b = append(b, '_')
			}
		}
		b = append(b, '\n')
	}
	return string(b), nil
}
