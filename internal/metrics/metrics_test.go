package metrics

import (
	"math"
	"strings"
	"testing"

	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/venue"
)

func newMap(t *testing.T, w, h int) *grid.Map {
	t.Helper()
	m, err := grid.New(geom.V2(0, 0), 0.15, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCoveragePercent(t *testing.T) {
	truth := newMap(t, 10, 10)
	gen := newMap(t, 10, 10)
	// Truth covers 50 cells; generated covers 30 of them plus 10 outside.
	n := 0
	truth.Each(func(c grid.Cell, _ int) {
		if n < 50 {
			truth.Set(c, 1)
			if n < 30 {
				gen.Set(c, 1)
			}
			n++
		}
	})
	// Extra generated cells outside truth must not count.
	gen.Set(grid.Cell{I: 9, J: 9}, 1)
	got, err := CoveragePercent(gen, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-60) > 1e-9 {
		t.Errorf("coverage = %v, want 60", got)
	}
}

func TestCoveragePercentErrors(t *testing.T) {
	m := newMap(t, 5, 5)
	if _, err := CoveragePercent(nil, m); err == nil {
		t.Error("nil generated should error")
	}
	other, _ := grid.New(geom.V2(0, 0), 0.15, 4, 4)
	if _, err := CoveragePercent(m, other); err == nil {
		t.Error("layout mismatch should error")
	}
	empty := newMap(t, 5, 5)
	if _, err := CoveragePercent(m, empty); err == nil {
		t.Error("empty truth should error")
	}
}

func TestOuterBoundsPercent(t *testing.T) {
	m := newMap(t, 100, 100) // 15x15 m
	// Outer wall along y=1 from x=1 to x=11 (10 m).
	wall := venue.Surface{
		ID: 1, Seg: geom.Seg(geom.V2(1, 1), geom.V2(11, 1)), Top: 3,
		Material: venue.Brick, Outer: true,
	}
	// Reconstruct only the first half in the obstacle map.
	for x := 1.0; x <= 6.0; x += 0.05 {
		m.Set(m.CellOf(geom.V2(x, 1)), 5)
	}
	got, err := OuterBoundsPercent(m, []venue.Surface{wall}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got < 40 || got > 60 {
		t.Errorf("bounds = %v%%, want ~50", got)
	}
	// Full reconstruction.
	for x := 1.0; x <= 11.0; x += 0.05 {
		m.Set(m.CellOf(geom.V2(x, 1)), 5)
	}
	got, err = OuterBoundsPercent(m, []venue.Surface{wall}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got < 95 {
		t.Errorf("full wall bounds = %v%%, want ~100", got)
	}
	// Empty map → 0%.
	empty := newMap(t, 100, 100)
	got, err = OuterBoundsPercent(empty, []venue.Surface{wall}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty map bounds = %v%%", got)
	}
}

func TestOuterBoundsPercentErrors(t *testing.T) {
	if _, err := OuterBoundsPercent(nil, nil, 0.15); err == nil {
		t.Error("nil map should error")
	}
	m := newMap(t, 5, 5)
	if _, err := OuterBoundsPercent(m, nil, 0.15); err == nil {
		t.Error("no surfaces should error")
	}
}

func TestMergeIntervals(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"empty", nil, nil},
		{"single", []Interval{{1, 2}}, []Interval{{1, 2}}},
		{"overlap", []Interval{{1, 3}, {2, 5}}, []Interval{{1, 5}}},
		{"touch", []Interval{{1, 2}, {2, 3}}, []Interval{{1, 3}}},
		{"disjoint", []Interval{{4, 5}, {1, 2}}, []Interval{{1, 2}, {4, 5}}},
		{"contained", []Interval{{1, 10}, {3, 4}}, []Interval{{1, 10}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MergeIntervals(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
	if got := TotalLength([]Interval{{1, 3}, {5, 6}}); math.Abs(got-3) > 1e-9 {
		t.Errorf("TotalLength = %v, want 3", got)
	}
}

func TestFeaturelessPRFPerfect(t *testing.T) {
	truth := venue.Surface{
		Seg: geom.Seg(geom.V2(0, 5), geom.V2(10, 5)), Top: 3, Material: venue.Glass,
	}
	spans := []geom.Segment{geom.Seg(geom.V2(2, 5), geom.V2(8, 5))}
	visible := []Interval{{2, 8}}
	prf := FeaturelessPRF(spans, truth, visible, 0.25)
	if prf.Precision < 0.99 || prf.Recall < 0.99 || prf.F < 0.99 {
		t.Errorf("perfect reconstruction scored %+v", prf)
	}
}

func TestFeaturelessPRFPartialRecall(t *testing.T) {
	truth := venue.Surface{
		Seg: geom.Seg(geom.V2(0, 5), geom.V2(10, 5)), Top: 3, Material: venue.Glass,
	}
	// Visible stretch 0..8 but only 0..4 reconstructed.
	spans := []geom.Segment{geom.Seg(geom.V2(0, 5), geom.V2(4, 5))}
	visible := []Interval{{0, 8}}
	prf := FeaturelessPRF(spans, truth, visible, 0.25)
	if prf.Precision < 0.99 {
		t.Errorf("on-surface span precision = %v", prf.Precision)
	}
	if prf.Recall < 0.45 || prf.Recall > 0.55 {
		t.Errorf("recall = %v, want ~0.5", prf.Recall)
	}
	if prf.F <= 0 || prf.F >= 1 {
		t.Errorf("F = %v", prf.F)
	}
}

func TestFeaturelessPRFOffSurface(t *testing.T) {
	truth := venue.Surface{
		Seg: geom.Seg(geom.V2(0, 5), geom.V2(10, 5)), Top: 3, Material: venue.Glass,
	}
	// Span floating 2 m off the wall: zero precision and recall.
	spans := []geom.Segment{geom.Seg(geom.V2(0, 7), geom.V2(4, 7))}
	prf := FeaturelessPRF(spans, truth, []Interval{{0, 10}}, 0.25)
	if prf.Precision != 0 || prf.Recall != 0 || prf.F != 0 {
		t.Errorf("off-surface span scored %+v", prf)
	}
}

func TestFeaturelessPRFEmpty(t *testing.T) {
	truth := venue.Surface{Seg: geom.Seg(geom.V2(0, 5), geom.V2(10, 5)), Top: 3}
	prf := FeaturelessPRF(nil, truth, nil, 0.25)
	if prf.Precision != 0 || prf.Recall != 0 || prf.F != 0 {
		t.Errorf("empty input scored %+v", prf)
	}
}

func TestRenderASCII(t *testing.T) {
	ob := newMap(t, 4, 3)
	vis := newMap(t, 4, 3)
	truth := newMap(t, 4, 3)
	truth.Fill(1)
	ob.Set(grid.Cell{I: 0, J: 0}, 1)
	vis.Set(grid.Cell{I: 1, J: 0}, 2)
	s, err := RenderASCII(ob, vis, truth)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	// North-up: row 0 of output is J=2.
	bottom := lines[2]
	if bottom[0] != '#' || bottom[1] != '.' || bottom[2] != '_' {
		t.Errorf("bottom row = %q", bottom)
	}
	// Outside truth → blank.
	truth.Set(grid.Cell{I: 3, J: 0}, 0)
	s, _ = RenderASCII(ob, vis, truth)
	lines = strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[2][3] != ' ' {
		t.Errorf("outside-truth cell = %q", lines[2][3])
	}
	if _, err := RenderASCII(nil, vis, nil); err == nil {
		t.Error("nil map should error")
	}
}

func TestWritePGM(t *testing.T) {
	ob := newMap(t, 4, 3)
	vis := newMap(t, 4, 3)
	truth := newMap(t, 4, 3)
	truth.Fill(1)
	ob.Set(grid.Cell{I: 0, J: 0}, 1)
	vis.Set(grid.Cell{I: 1, J: 0}, 2)
	out, err := WritePGM(ob, vis, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := "P5\n4 3\n255\n"
	if string(out[:len(want)]) != want {
		t.Fatalf("header = %q", out[:len(want)])
	}
	pix := out[len(want):]
	if len(pix) != 12 {
		t.Fatalf("pixel count = %d", len(pix))
	}
	// North-up: the bottom map row (J=0) is the last pixel row.
	bottom := pix[8:]
	if bottom[0] != 0 {
		t.Errorf("obstacle pixel = %d, want 0", bottom[0])
	}
	if bottom[1] != 180 {
		t.Errorf("visible pixel = %d, want 180", bottom[1])
	}
	if bottom[2] != 255 {
		t.Errorf("unknown pixel = %d, want 255", bottom[2])
	}
	// Outside the truth area renders faintly.
	truth.Set(grid.Cell{I: 3, J: 0}, 0)
	out, _ = WritePGM(ob, vis, truth)
	pix = out[len(want):]
	if pix[11] != 230 {
		t.Errorf("outside pixel = %d, want 230", pix[11])
	}
	// nil truth allowed.
	if _, err := WritePGM(ob, vis, nil); err != nil {
		t.Errorf("nil truth rejected: %v", err)
	}
	if _, err := WritePGM(nil, vis, nil); err == nil {
		t.Error("nil obstacles accepted")
	}
	mismatch, _ := grid.New(geom.V2(0, 0), 0.15, 5, 5)
	if _, err := WritePGM(ob, mismatch, nil); err == nil {
		t.Error("layout mismatch accepted")
	}
}
