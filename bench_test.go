// Package snaptask's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (scaled to benchmark-friendly venues —
// the full library numbers come from cmd/snaptask-bench), plus
// micro-benchmarks of every substrate on the hot path.
package snaptask

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"snaptask/internal/annotation"
	"snaptask/internal/camera"
	"snaptask/internal/cluster"
	"snaptask/internal/core"
	"snaptask/internal/crowd"
	"snaptask/internal/experiments"
	"snaptask/internal/geom"
	"snaptask/internal/grid"
	"snaptask/internal/imaging"
	"snaptask/internal/mapping"
	"snaptask/internal/metrics"
	"snaptask/internal/nav"
	"snaptask/internal/pointcloud"
	"snaptask/internal/sfm"
	"snaptask/internal/taskgen"
	"snaptask/internal/telemetry"
	"snaptask/internal/telemetry/slo"
	"snaptask/internal/venue"
)

// benchSetup prepares the small-room experiment state shared by the
// figure-level benchmarks.
func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	v, err := venue.SmallRoom()
	if err != nil {
		b.Fatal(err)
	}
	setup, err := experiments.NewSetup(v, 1, core.Config{Margin: 3})
	if err != nil {
		b.Fatal(err)
	}
	return setup
}

// BenchmarkFig10GuidedLoop regenerates the Figure 10 experiment: the full
// guided loop from bootstrap to declared coverage.
func BenchmarkFig10GuidedLoop(b *testing.B) {
	setup := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := setup.RunGuided(int64(i+2), experiments.GuidedOptions{MaxTasks: 50})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Covered {
			b.Fatal("loop did not converge")
		}
	}
}

// BenchmarkFig11Unguided regenerates the Figure 11a/11b unguided series:
// dataset build plus incremental evaluation.
func BenchmarkFig11Unguided(b *testing.B) {
	setup := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		photos, err := setup.BuildUnguided(int64(i+3), 300)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := setup.EvaluateIncremental(photos, 100, int64(i+4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Opportunistic regenerates the Figure 11a/11b opportunistic
// series.
func BenchmarkFig11Opportunistic(b *testing.B) {
	setup := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		photos, _, err := setup.BuildOpportunistic(int64(i+5), 15, 300)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := setup.EvaluateIncremental(photos, 100, int64(i+6)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Render regenerates the Figure 12 map rendering.
func BenchmarkFig12Render(b *testing.B) {
	setup := benchSetup(b)
	res, err := setup.RunGuided(9, experiments.GuidedOptions{MaxTasks: 50})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.RenderASCII(res.FinalMaps.Obstacles, res.FinalMaps.Visibility, setup.TruthCov); err != nil {
			b.Fatal(err)
		}
	}
}

// glassRoomWorld builds the Table I benchmark scene.
func glassRoomWorld(b *testing.B) (*venue.Venue, *camera.World) {
	b.Helper()
	bld := venue.NewBuilder("bench-glass", geom.Rect(geom.V2(0, 0), geom.V2(12, 10)), 3.0)
	bld.WallMaterial(1, venue.Glass)
	bld.Entrance(0, 0.1, 0.2)
	bld.Obstacle("shelf", geom.Rect(geom.V2(8, 1), geom.V2(11, 1.6)), 2.0, venue.Wood, 10)
	bld.Obstacle("shelf2", geom.Rect(geom.V2(8, 8.4), geom.V2(11, 9)), 2.0, venue.Wood, 10)
	v, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return v, camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
}

// BenchmarkTable1Featureless regenerates the Table I experiment: the whole
// annotation pipeline for one featureless surface.
func BenchmarkTable1Featureless(b *testing.B) {
	v, world := glassRoomWorld(b)
	rng := rand.New(rand.NewSource(2))
	seed := sfm.NewModel(sfm.Config{}, world.Features())
	for _, pos := range []geom.Vec2{{X: 9.5, Y: 5}, {X: 7, Y: 5}} {
		photos, err := world.Sweep(pos, camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := seed.RegisterBatch(photos, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task, err := annotation.CollectPhotos(world, v, geom.V2(10.5, 5), camera.DefaultIntrinsics(), rng)
		if err != nil {
			b.Fatal(err)
		}
		anns, err := annotation.SimulateWorkers(task, v, annotation.WorkerOptions{Workers: 15}, rng)
		if err != nil {
			b.Fatal(err)
		}
		bounds, err := annotation.MarkedObstacleBounds(anns, len(task.Photos), annotation.BoundsConfig{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		nextID := annotation.ArtificialIDBase + uint64(i*10000)
		if _, err := annotation.Reconstruct(seed, world, task, bounds,
			imaging.TextureDB{}, annotation.ReconConfig{}, &nextID, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8OpportunisticPaths regenerates the Figure 8 trip
// generation.
func BenchmarkFig8OpportunisticPaths(b *testing.B) {
	setup := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := setup.BuildOpportunistic(int64(i+7), 15, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9TaskGeneration regenerates the Figure 9 task placement: one
// Algorithm 1 iteration over half-covered maps.
func BenchmarkFig9TaskGeneration(b *testing.B) {
	ob, err := grid.New(geom.V2(0, 0), 0.15, 200, 120)
	if err != nil {
		b.Fatal(err)
	}
	vis := grid.NewLike(ob)
	// Cover the left half with 4 views.
	vis.Each(func(c grid.Cell, _ int) {
		if c.I < 100 {
			vis.Set(c, 4)
		}
	})
	gen := taskgen.NewGenerator(taskgen.Config{})
	in := taskgen.StepInput{
		Obstacles:         ob,
		Visibility:        vis,
		Start:             geom.V2(1, 1),
		BatchRegistered:   true,
		CoverageIncreased: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := gen.Step(in)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tasks) == 0 {
			b.Fatal("no task")
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkCameraCapture(b *testing.B) {
	v, err := venue.Library()
	if err != nil {
		b.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	rng := rand.New(rand.NewSource(2))
	pose := camera.Pose{Pos: geom.V2(12, 7), Yaw: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := world.Capture(pose, camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSfMRegisterSweep(b *testing.B) {
	v, err := venue.Library()
	if err != nil {
		b.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	rng := rand.New(rand.NewSource(2))
	photos, err := world.Sweep(geom.V2(12, 7), camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := sfm.NewModel(sfm.Config{}, world.Features())
		if _, err := model.RegisterBatch(photos, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObstaclesMap(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cloud := pointcloud.NewCloud(nil)
	for i := 0; i < 20000; i++ {
		cloud.Add(pointcloud.Point{
			Pos:       geom.V3(rng.Float64()*25, rng.Float64()*14, rng.Float64()*2.5),
			FeatureID: uint64(i + 1),
		})
	}
	layout, err := grid.New(geom.V2(0, 0), 0.15, 180, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.ObstaclesMap(cloud, layout, mapping.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVisibilityMap(b *testing.B) {
	layout, err := grid.New(geom.V2(0, 0), 0.15, 180, 100)
	if err != nil {
		b.Fatal(err)
	}
	obstacles := grid.NewLike(layout)
	for x := 0.0; x < 27; x += 0.1 {
		obstacles.Set(obstacles.CellOf(geom.V2(x, 7)), 5)
	}
	var views []mapping.View
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 45; i++ {
		views = append(views, mapping.View{
			Pose:       camera.Pose{Pos: geom.V2(5+rng.Float64()*15, 2+rng.Float64()*4), Yaw: rng.Float64() * 6.28},
			Intrinsics: camera.DefaultIntrinsics(),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapping.VisibilityMap(views, obstacles, mapping.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindUnvisited(b *testing.B) {
	ob, err := grid.New(geom.V2(0, 0), 0.15, 200, 120)
	if err != nil {
		b.Fatal(err)
	}
	vis := grid.NewLike(ob)
	vis.Each(func(c grid.Cell, _ int) {
		if (c.I/40+c.J/40)%2 == 0 {
			vis.Set(c, 5)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := taskgen.FindUnvisited(ob, vis, geom.V2(1, 1), taskgen.Config{}, 4); len(got) == 0 {
			b.Fatal("no regions")
		}
	}
}

func BenchmarkSOR(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cloud := pointcloud.NewCloud(nil)
	for i := 0; i < 5000; i++ {
		cloud.Add(pointcloud.Point{Pos: geom.V3(rng.Float64()*20, rng.Float64()*12, rng.Float64()*3)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pointcloud.StatisticalOutlierRemoval(cloud, pointcloud.SOROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var pts []geom.Vec2
	for i := 0; i < 600; i++ {
		center := geom.V2(float64(i%4), float64(i%3))
		pts = append(pts, center.Add(geom.V2(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.DBSCAN(pts, 0.2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var pts []geom.Vec2
	for i := 0; i < 240; i++ {
		corner := geom.V2(float64(i%2), float64((i/2)%2))
		pts = append(pts, corner.Add(geom.V2(rng.NormFloat64()*0.03, rng.NormFloat64()*0.03)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaplacianVariance(b *testing.B) {
	img, err := imaging.NewGray(48, 48)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	img.AddNoise(rng, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if img.LaplacianVariance() < 0 {
			b.Fatal("negative variance")
		}
	}
}

func BenchmarkAStar(b *testing.B) {
	v, err := venue.Library()
	if err != nil {
		b.Fatal(err)
	}
	gt, err := v.GroundTruth(0.15)
	if err != nil {
		b.Fatal(err)
	}
	walk := v.WalkMap(gt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nav.PlanPath(walk, geom.V2(1.75, 1.2), geom.V2(23, 13)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuidedSweep(b *testing.B) {
	v, err := venue.Library()
	if err != nil {
		b.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	gt, err := v.GroundTruth(0.15)
	if err != nil {
		b.Fatal(err)
	}
	walk := v.WalkMap(gt)
	rng := rand.New(rand.NewSource(9))
	worker := &crowd.GuidedWorker{
		World:      world,
		Venue:      v,
		Intrinsics: camera.DefaultIntrinsics(),
		Pos:        v.Entrance(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worker.Pos = v.Entrance()
		if _, err := worker.DoPhotoTask(walk, geom.V2(12.8, 6.5), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngest measures one owner-path photo-batch ingest per iteration on a
// bootstrapped small-room system — bare or carrying the full observability
// bundle (tracer, metrics, request/trace IDs, SLO tracker). The pair backs
// the instrumented-ingest overhead budget in EXPERIMENTS.md; CI smokes both
// at -benchtime=1x and cmd/snaptask-bench -exp overhead gates the ratio.
func benchIngest(b *testing.B, instrumented bool) {
	v, err := venue.SmallRoom()
	if err != nil {
		b.Fatal(err)
	}
	world := camera.NewWorld(v, v.GenerateFeatures(rand.New(rand.NewSource(1))))
	sys, err := core.NewSystem(v, world, core.Config{Margin: 3})
	if err != nil {
		b.Fatal(err)
	}
	var sloT *slo.Tracker
	if instrumented {
		quiet, err := telemetry.NewLogger(io.Discard, "error", "text")
		if err != nil {
			b.Fatal(err)
		}
		tel := telemetry.New(quiet, 64)
		sys.SetTelemetry(tel)
		sloT = slo.New(tel.Registry)
	}
	rng := rand.New(rand.NewSource(2))
	boot, err := core.BootstrapCapture(world, v, camera.DefaultIntrinsics(), rng)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.ProcessBootstrap(boot, rng); err != nil {
		b.Fatal(err)
	}
	var free []geom.Vec2
	bounds := v.Bounds()
	for y := bounds.Min.Y + 0.7; y < bounds.Max.Y; y += 1.1 {
		for x := bounds.Min.X + 0.7; x < bounds.Max.X; x += 1.1 {
			if p := geom.V2(x, y); !v.Blocked(p) {
				free = append(free, p)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pos := free[i%len(free)]
		photos, err := world.Sweep(pos, camera.DefaultIntrinsics(), camera.CaptureOptions{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if instrumented {
			sys.SetRequestID(telemetry.NewRequestID())
			sys.SetTraceContext(telemetry.NewTraceContext())
		}
		t0 := time.Now()
		if _, err := sys.ProcessPhotoBatch(pos, pos, photos, rng); err != nil {
			b.Fatal(err)
		}
		if sloT != nil {
			sloT.Record("upload", time.Since(t0), false)
		}
	}
}

func BenchmarkIngestBare(b *testing.B)         { benchIngest(b, false) }
func BenchmarkIngestInstrumented(b *testing.B) { benchIngest(b, true) }

// rebuildScene builds the synthetic rebuild-benchmark inputs: the
// BenchmarkVisibilityMap wall scene as a point cloud (so ObstaclesMap
// reconstructs the wall) plus n camera views scattered south of it.
func rebuildScene(b *testing.B, n int) (*pointcloud.Cloud, []mapping.View, *grid.Map) {
	b.Helper()
	layout, err := grid.New(geom.V2(0, 0), 0.15, 180, 100)
	if err != nil {
		b.Fatal(err)
	}
	cloud := pointcloud.NewCloud(nil)
	id := uint64(1)
	for x := 0.0; x < 27; x += 0.05 {
		for _, z := range []float64{0.4, 0.9, 1.4, 1.9, 2.3} {
			cloud.Add(pointcloud.Point{Pos: geom.V3(x, 7, z), FeatureID: id})
			id++
		}
	}
	rng := rand.New(rand.NewSource(4))
	views := make([]mapping.View, n)
	for i := range views {
		views[i] = mapping.View{
			Pose:       camera.Pose{Pos: geom.V2(5+rng.Float64()*15, 2+rng.Float64()*4), Yaw: rng.Float64() * 6.28},
			Intrinsics: camera.DefaultIntrinsics(),
		}
	}
	return cloud, views, layout
}

// BenchmarkRebuildFull measures a from-scratch mapping.Build at growing view
// counts: the cost every batch paid before the incremental builder.
func BenchmarkRebuildFull(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", n), func(b *testing.B) {
			cloud, views, layout := rebuildScene(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mapping.Build(cloud, views, layout, mapping.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuildIncremental measures the same rebuild through the
// incremental builder with a warm cache: one batch lands 45 new views on top
// of n-45 cached ones, the shape of every post-bootstrap rebuild. Only the
// Update call is timed.
func BenchmarkRebuildIncremental(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", n), func(b *testing.B) {
			cloud, views, layout := rebuildScene(b, n)
			warm := views[:n-45]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				inc, err := mapping.NewIncremental(layout, mapping.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := inc.Update(cloud, warm); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := inc.Update(cloud, views); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
